// Property-based tests (parameterized sweeps via TEST_P): randomized
// operation sequences checked against reference models and conservation
// invariants, across seeds and mechanism configurations.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/base/rng.h"
#include "src/base/strings.h"
#include "src/core/host.h"
#include "src/sim/run.h"
#include "src/tinyx/builder.h"

namespace {

using lv::Bytes;
using lv::Duration;

// --- Store vs. reference model ------------------------------------------------

// Random write/rm/read/directory sequences applied to both the Store and a
// plain std::map reference; every read and listing must agree, and every
// mutation must fire exactly the watches whose prefix matches.
class StoreModelTest : public ::testing::TestWithParam<int> {};

TEST_P(StoreModelTest, RandomOpsAgreeWithReferenceModel) {
  lv::Rng rng(static_cast<uint64_t>(GetParam()));
  xs::Store store;
  std::map<std::string, std::string> model;  // canon path -> value

  // A fixed path universe keeps collisions frequent.
  std::vector<std::string> paths;
  for (int d = 1; d <= 6; ++d) {
    for (int k = 0; k < 4; ++k) {
      paths.push_back(lv::StrFormat("/local/domain/%d/slot/%d", d, k));
    }
  }
  // Watches on a few prefixes.
  struct WatchSpec {
    std::string prefix;
    std::string canon;
  };
  std::vector<WatchSpec> watches = {
      {"/local/domain/1", "local/domain/1"},
      {"/local/domain/2/slot", "local/domain/2/slot"},
      {"/local", "local"},
  };
  for (size_t w = 0; w < watches.size(); ++w) {
    store.AddWatch(static_cast<xs::ClientId>(w), watches[w].prefix, "t");
  }

  auto matches = [](const std::string& canon, const std::string& prefix) {
    return canon == prefix ||
           (canon.size() > prefix.size() && canon.compare(0, prefix.size(), prefix) == 0 &&
            canon[prefix.size()] == '/');
  };

  for (int step = 0; step < 600; ++step) {
    const std::string& path =
        paths[static_cast<size_t>(rng.Uniform(0, static_cast<int64_t>(paths.size()) - 1))];
    std::string canon = path.substr(1);
    int op = static_cast<int>(rng.Uniform(0, 3));
    if (op == 0) {  // write
      std::string value = lv::StrFormat("v%d", step);
      std::vector<xs::WatchHit> hits;
      ASSERT_TRUE(store.Write(path, value, hv::kDom0, xs::kNoTxn, &hits).ok());
      model[canon] = value;
      int64_t expected_hits = 0;
      for (const WatchSpec& w : watches) {
        if (matches(canon, w.canon)) {
          ++expected_hits;
        }
      }
      EXPECT_EQ(static_cast<int64_t>(hits.size()), expected_hits) << canon;
    } else if (op == 1) {  // rm (leaf only, so the model stays in sync)
      std::vector<xs::WatchHit> hits;
      lv::Status s = store.Rm(path, xs::kNoTxn, &hits);
      bool existed = model.erase(canon) > 0;
      EXPECT_EQ(s.ok(), existed) << canon;
    } else if (op == 2) {  // read
      auto r = store.Read(path);
      auto it = model.find(canon);
      if (it == model.end()) {
        // The node may exist as an intermediate directory with empty value.
        if (r.ok()) {
          EXPECT_TRUE(r->empty()) << canon;
        }
      } else {
        ASSERT_TRUE(r.ok()) << canon;
        EXPECT_EQ(*r, it->second);
      }
    } else {  // directory of a parent
      std::string parent = path.substr(0, path.rfind('/'));
      auto dir = store.Directory(parent);
      if (dir.ok()) {
        // Every model key under this parent must be listed.
        std::set<std::string> listed(dir->begin(), dir->end());
        std::string parent_canon = parent.substr(1);
        for (const auto& [key, value] : model) {
          if (key.size() > parent_canon.size() && key.compare(0, parent_canon.size(),
                                                              parent_canon) == 0 &&
              key[parent_canon.size()] == '/') {
            std::string child = key.substr(parent_canon.size() + 1);
            child = child.substr(0, child.find('/'));
            EXPECT_TRUE(listed.contains(child)) << key;
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StoreModelTest, ::testing::Range(1, 9));

// --- Transaction atomicity -----------------------------------------------------

class TxnPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(TxnPropertyTest, ConflictingTransactionsNeverBothCommit) {
  lv::Rng rng(static_cast<uint64_t>(GetParam()) * 77 + 5);
  xs::Store store;
  for (int round = 0; round < 100; ++round) {
    std::string key = lv::StrFormat("/k/%d", (int)rng.Uniform(0, 5));
    (void)store.Write(key, "base", hv::kDom0);
    xs::TxnId t1 = store.TxBegin();
    xs::TxnId t2 = store.TxBegin();
    // Both transactions read-modify-write the same key.
    (void)store.Read(key, t1);
    (void)store.Read(key, t2);
    (void)store.Write(key, lv::StrFormat("t1-%d", round), hv::kDom0, t1);
    (void)store.Write(key, lv::StrFormat("t2-%d", round), hv::kDom0, t2);
    bool first_is_t1 = rng.Chance(0.5);
    std::vector<xs::WatchHit> hits;
    lv::Status first = store.TxCommit(first_is_t1 ? t1 : t2, false, &hits);
    lv::Status second = store.TxCommit(first_is_t1 ? t2 : t1, false, &hits);
    EXPECT_TRUE(first.ok());
    EXPECT_EQ(second.code(), lv::ErrorCode::kConflict);
    // The surviving value is the first committer's.
    EXPECT_EQ(*store.Read(key),
              lv::StrFormat(first_is_t1 ? "t1-%d" : "t2-%d", round));
  }
  EXPECT_EQ(store.open_txns(), 0);
}

TEST_P(TxnPropertyTest, DisjointTransactionsAllCommit) {
  lv::Rng rng(static_cast<uint64_t>(GetParam()) * 31 + 1);
  xs::Store store;
  for (int round = 0; round < 50; ++round) {
    int n = static_cast<int>(rng.Uniform(2, 6));
    std::vector<xs::TxnId> txns;
    for (int i = 0; i < n; ++i) {
      txns.push_back(store.TxBegin());
      (void)store.Write(lv::StrFormat("/r%d/t%d", round, i), "v", hv::kDom0, txns.back());
    }
    std::vector<xs::WatchHit> hits;
    for (int i = 0; i < n; ++i) {
      EXPECT_TRUE(store.TxCommit(txns[static_cast<size_t>(i)], false, &hits).ok());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TxnPropertyTest, ::testing::Range(1, 6));

// --- CPU scheduler conservation --------------------------------------------------

struct CpuCase {
  int cores;
  int jobs;
  int seed;
};

class CpuConservationTest : public ::testing::TestWithParam<CpuCase> {};

TEST_P(CpuConservationTest, ConsumedTimeEqualsSubmittedWork) {
  const CpuCase& c = GetParam();
  sim::Engine engine(static_cast<uint64_t>(c.seed));
  sim::CpuScheduler cpu(&engine, c.cores);
  lv::Rng rng(static_cast<uint64_t>(c.seed) * 13 + 7);

  Duration total_work;
  std::vector<Duration> per_owner(static_cast<size_t>(c.jobs));
  for (int j = 0; j < c.jobs; ++j) {
    Duration work = Duration::Micros(rng.Uniform(50, 5000));
    Duration start_delay = Duration::Micros(rng.Uniform(0, 2000));
    int core = static_cast<int>(rng.Uniform(0, c.cores - 1));
    total_work += work;
    per_owner[static_cast<size_t>(j)] = work;
    engine.Schedule(start_delay, [&engine, &cpu, core, work, j] {
      engine.Spawn([](sim::CpuScheduler& s, int core, Duration w, int owner) -> sim::Co<void> {
        co_await s.Run(core, w, owner + 1);
      }(cpu, core, work, j));
    });
  }
  engine.Run();

  // Conservation: every job's consumed time equals its submitted work, and
  // per-core busy time sums to the total.
  Duration consumed;
  for (int j = 0; j < c.jobs; ++j) {
    Duration got = cpu.ConsumedBy(j + 1);
    EXPECT_NEAR(got.us(), per_owner[static_cast<size_t>(j)].us(), 1.0) << "owner " << j;
    consumed += got;
  }
  Duration busy;
  for (int core = 0; core < c.cores; ++core) {
    busy += cpu.BusyTime(core);
    EXPECT_LE(cpu.BusyTime(core).ns(), engine.now().ns());  // Never beyond wall.
    EXPECT_EQ(cpu.ActiveJobs(core), 0);
  }
  EXPECT_NEAR(consumed.us(), total_work.us(), static_cast<double>(c.jobs));
  EXPECT_NEAR(busy.us(), total_work.us(), static_cast<double>(c.jobs));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CpuConservationTest,
    ::testing::Values(CpuCase{1, 10, 1}, CpuCase{1, 100, 2}, CpuCase{4, 50, 3},
                      CpuCase{4, 200, 4}, CpuCase{16, 300, 5}, CpuCase{64, 500, 6}));

// --- VM lifecycle invariants across all mechanisms --------------------------------

struct LifecycleCase {
  lightvm::Mechanisms mechanisms;
  int seed;
};

class LifecyclePropertyTest : public ::testing::TestWithParam<LifecycleCase> {};

TEST_P(LifecyclePropertyTest, RandomLifecycleConservesResources) {
  const LifecycleCase& c = GetParam();
  sim::Engine engine(static_cast<uint64_t>(c.seed));
  lightvm::Host host(&engine, lightvm::HostSpec::Xeon4Core(), c.mechanisms);
  if (c.mechanisms.split) {
    host.AddShellFlavor(guests::DaytimeUnikernel().memory, true, 4);
    host.PrefillShellPool();
  }
  lv::Rng rng(static_cast<uint64_t>(c.seed) * 7 + 3);

  std::vector<hv::DomainId> running;
  int created = 0;
  for (int step = 0; step < 60; ++step) {
    int op = static_cast<int>(rng.Uniform(0, 3));
    if (op <= 1 || running.empty()) {  // create (biased)
      toolstack::VmConfig config;
      config.name = lv::StrFormat("p%d", created++);
      config.image = guests::DaytimeUnikernel();
      auto domid = sim::RunToCompletion(engine, host.CreateAndBoot(config));
      ASSERT_TRUE(domid.ok()) << domid.error().message;
      running.push_back(*domid);
    } else if (op == 2) {  // destroy a random VM
      size_t victim =
          static_cast<size_t>(rng.Uniform(0, static_cast<int64_t>(running.size()) - 1));
      ASSERT_TRUE(sim::RunToCompletion(engine, host.DestroyVm(running[victim])).ok());
      running.erase(running.begin() + static_cast<long>(victim));
    } else {  // save + restore a random VM
      size_t victim =
          static_cast<size_t>(rng.Uniform(0, static_cast<int64_t>(running.size()) - 1));
      hv::DomainId domid = running[victim];
      running.erase(running.begin() + static_cast<long>(victim));
      auto snap = sim::RunToCompletion(engine, host.SaveVm(domid));
      ASSERT_TRUE(snap.ok()) << snap.error().message;
      auto restored = sim::RunToCompletion(engine, host.RestoreVm(*snap));
      ASSERT_TRUE(restored.ok()) << restored.error().message;
      running.push_back(*restored);
    }

    // Invariants after every step.
    EXPECT_EQ(host.num_vms(), static_cast<int64_t>(running.size()));
    // Memory: Dom0 + each live guest's reservation (+ pooled shells).
    int64_t pool = host.chaos_daemon() ? host.chaos_daemon()->pool_size() : 0;
    double expected_mib =
        host.spec().dom0_memory.mib() +
        static_cast<double>(static_cast<int64_t>(running.size())) *
            guests::DaytimeUnikernel().memory.mib();
    double measured_mib = host.MemoryUsed().mib();
    // Shells mid-build may hold one extra reservation.
    double slack = (static_cast<double>(pool) + 2.0) * guests::DaytimeUnikernel().memory.mib();
    EXPECT_GE(measured_mib + 0.001, expected_mib) << "step " << step;
    EXPECT_LE(measured_mib, expected_mib + slack) << "step " << step;
  }

  // Drain everything; the host must return to (near) baseline.
  for (hv::DomainId domid : running) {
    ASSERT_TRUE(sim::RunToCompletion(engine, host.DestroyVm(domid)).ok());
  }
  EXPECT_EQ(host.num_vms(), 0);
  EXPECT_EQ(host.hv().NumDomainsInState(hv::DomainState::kRunning), 0);
}

INSTANTIATE_TEST_SUITE_P(
    MechanismsBySeed, LifecyclePropertyTest,
    ::testing::Values(LifecycleCase{lightvm::Mechanisms::Xl(), 1},
                      LifecycleCase{lightvm::Mechanisms::Xl(), 2},
                      LifecycleCase{lightvm::Mechanisms::ChaosXs(), 1},
                      LifecycleCase{lightvm::Mechanisms::ChaosXs(), 2},
                      LifecycleCase{lightvm::Mechanisms::ChaosXsSplit(), 1},
                      LifecycleCase{lightvm::Mechanisms::ChaosNoxs(), 1},
                      LifecycleCase{lightvm::Mechanisms::ChaosNoxs(), 2},
                      LifecycleCase{lightvm::Mechanisms::LightVm(), 1},
                      LifecycleCase{lightvm::Mechanisms::LightVm(), 2},
                      LifecycleCase{lightvm::Mechanisms::LightVm(), 3}));

// --- Tinyx build properties ----------------------------------------------------

class TinyxPropertyTest
    : public ::testing::TestWithParam<std::tuple<const char*, tinyx::Platform>> {};

TEST_P(TinyxPropertyTest, EveryBuildIsBootableAndMinimal) {
  const auto& [app, platform] = GetParam();
  tinyx::TinyxBuilder builder(tinyx::PackageDb::DebianBase());
  tinyx::BuildConfig config;
  config.app = app;
  config.platform = platform;
  tinyx::KernelModel kernel;
  config.kernel_options_to_test = kernel.DefaultOnOptions();
  auto image = builder.Build(config);
  ASSERT_TRUE(image.ok()) << image.error().message;

  // The final configuration passes the boot test for this app.
  EXPECT_TRUE(kernel.BootTest(image->kernel_options, app));
  // The app itself and busybox are present; nothing blacklisted leaked in.
  EXPECT_TRUE(std::find(image->packages.begin(), image->packages.end(), app) !=
              image->packages.end());
  for (const std::string& bad : image->blacklisted) {
    EXPECT_TRUE(std::find(image->packages.begin(), image->packages.end(), bad) ==
                image->packages.end());
  }
  // Minimality: disabling any surviving tested option would break the app —
  // re-check each one.
  for (const std::string& opt : config.kernel_options_to_test) {
    if (!image->kernel_options.contains(opt)) {
      continue;  // Already disabled by the loop.
    }
    std::set<std::string> without = image->kernel_options;
    without.erase(opt);
    EXPECT_FALSE(kernel.BootTest(without, app))
        << opt << " survived trimming but is not actually needed by " << app;
  }
  // Far below a general-purpose distribution.
  EXPECT_LT(image->image_size.mib(), 64.0);
}

INSTANTIATE_TEST_SUITE_P(
    AppsByPlatform, TinyxPropertyTest,
    ::testing::Combine(::testing::Values("nginx", "micropython", "tls-proxy"),
                       ::testing::Values(tinyx::Platform::kXen, tinyx::Platform::kKvm)));

// --- Store policy differential oracle ----------------------------------------
//
// The indexed fast path (StorePolicy::kIndexed, src/xenstore/policy.h) must
// be observably equivalent to the faithful legacy store: identical values,
// error codes AND messages, watch-hit sets in identical order, identical
// node/watch/txn counts, generation counter and per-domain quota accounting
// after every single operation. This sweep drives both policies through the
// same seeded random operation sequence — writes, removals, reads,
// directory listings, transaction begin/commit/abort, watch register/
// unregister/replay, unique-name admission checks and (on a third of the
// seeds) node-quota enforcement — serializing every observable into a
// transcript line per op, and requires the transcripts to match byte for
// byte. Running each policy twice additionally pins same-seed determinism.

struct StoreOp {
  enum Kind {
    kOpWrite,
    kOpRm,
    kOpRead,
    kOpDir,
    kOpExists,
    kOpTxBegin,
    kOpTxCommit,
    kOpTxAbort,
    kOpWatchAdd,
    kOpWatchRm,
    kOpWatchRmClient,
    kOpUniqueName,
    kOpReplay,
  };
  Kind kind = kOpWrite;
  std::string path;
  std::string value;
  std::string token;
  hv::DomainId owner = hv::kDom0;
  xs::ClientId client = 0;
  int pick = 0;        // open-transaction slot selector (mod open count)
  bool in_txn = false; // route the mutation/read through an open txn if any
};

std::vector<StoreOp> GenStoreOps(uint64_t seed, int steps) {
  lv::Rng rng(seed * 131 + 17);
  // Small universes keep collisions (overwrites, conflicts, duplicate names,
  // watch overlaps) frequent.
  std::vector<std::string> paths;
  for (int d = 1; d <= 4; ++d) {
    paths.push_back(lv::StrFormat("/local/domain/%d", d));
    paths.push_back(lv::StrFormat("/local/domain/%d/name", d));
    paths.push_back(lv::StrFormat("/local/domain/%d/data/x", d));
    for (int k = 0; k < 3; ++k) {
      paths.push_back(lv::StrFormat("/local/domain/%d/device/vif/%d/state", d, k));
    }
  }
  paths.push_back("/tool/xenstored/log");
  paths.push_back("/backend/vif/1/0/state");
  std::vector<std::string> watch_paths = {
      "/local",          "/local/domain/1",      "/local/domain/2",
      "/local/domain/2/device", "/local/domain/3/name", "/backend/vif/1",
      "/tool"};
  std::vector<std::string> names = {"web", "db", "cache", "edge", "vm"};

  auto pick_path = [&] {
    return paths[static_cast<size_t>(rng.Uniform(0, static_cast<int64_t>(paths.size()) - 1))];
  };
  auto pick_owner = [&] {
    // Half Dom0, half a random guest — mismatched guests exercise the
    // PERMISSION_DENIED surface, which must be identical across policies.
    return rng.Chance(0.5) ? hv::kDom0 : static_cast<hv::DomainId>(rng.Uniform(1, 4));
  };

  std::vector<StoreOp> ops;
  ops.reserve(static_cast<size_t>(steps));
  for (int i = 0; i < steps; ++i) {
    StoreOp op;
    op.pick = static_cast<int>(rng.Uniform(0, (1 << 20) - 1));
    int r = static_cast<int>(rng.Uniform(0, 99));
    if (r < 34) {
      op.kind = StoreOp::kOpWrite;
      op.path = pick_path();
      // Name nodes get values from a small pool so the name index sees
      // duplicates and refcount churn.
      op.value = op.path.ends_with("/name")
                     ? names[static_cast<size_t>(rng.Uniform(0, 4))]
                     : lv::StrFormat("v%d", i);
      op.owner = pick_owner();
      op.in_txn = rng.Chance(0.35);
    } else if (r < 42) {
      op.kind = StoreOp::kOpRm;
      op.path = pick_path();
      op.owner = pick_owner();
      op.in_txn = rng.Chance(0.25);
    } else if (r < 57) {
      op.kind = StoreOp::kOpRead;
      op.path = pick_path();
      op.in_txn = rng.Chance(0.3);
    } else if (r < 64) {
      op.kind = StoreOp::kOpDir;
      op.path = pick_path();
    } else if (r < 68) {
      op.kind = StoreOp::kOpExists;
      op.path = pick_path();
    } else if (r < 75) {
      op.kind = StoreOp::kOpTxBegin;
    } else if (r < 81) {
      op.kind = StoreOp::kOpTxCommit;
    } else if (r < 84) {
      op.kind = StoreOp::kOpTxAbort;
    } else if (r < 90) {
      op.kind = StoreOp::kOpWatchAdd;
      op.client = rng.Uniform(1, 5);
      op.path = watch_paths[static_cast<size_t>(rng.Uniform(0, 6))];
      op.token = lv::StrFormat("t%d", (int)rng.Uniform(0, 1));
    } else if (r < 93) {
      op.kind = StoreOp::kOpWatchRm;
      op.client = rng.Uniform(1, 5);
      op.path = watch_paths[static_cast<size_t>(rng.Uniform(0, 6))];
      op.token = lv::StrFormat("t%d", (int)rng.Uniform(0, 1));
    } else if (r < 94) {
      op.kind = StoreOp::kOpWatchRmClient;
      op.client = rng.Uniform(1, 5);
    } else if (r < 98) {
      op.kind = StoreOp::kOpUniqueName;
      op.value = names[static_cast<size_t>(rng.Uniform(0, 4))];
    } else {
      op.kind = StoreOp::kOpReplay;
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

void RecordStatus(std::string* out, const lv::Status& s) {
  *out += " -> ";
  *out += lv::ErrorCodeName(s.code());
  if (!s.ok()) {
    *out += " '" + s.error().message + "'";
  }
}

std::string ApplyStoreOps(xs::StorePolicy policy, const std::vector<StoreOp>& ops,
                          int64_t quota) {
  xs::Store store(policy);
  store.set_node_quota(quota);
  std::vector<xs::TxnId> open;
  std::string out;
  int i = 0;
  for (const StoreOp& op : ops) {
    out += lv::StrFormat("#%d ", i++);
    std::vector<xs::WatchHit> hits;
    xs::TxnId txn = (op.in_txn && !open.empty())
                        ? open[static_cast<size_t>(op.pick) % open.size()]
                        : xs::kNoTxn;
    switch (op.kind) {
      case StoreOp::kOpWrite:
        out += "write " + op.path;
        RecordStatus(&out, store.Write(op.path, op.value, op.owner, txn, &hits));
        break;
      case StoreOp::kOpRm:
        out += "rm " + op.path;
        RecordStatus(&out, store.Rm(op.path, txn, &hits, op.owner));
        break;
      case StoreOp::kOpRead: {
        out += "read " + op.path + " ->";
        auto r = store.Read(op.path, txn);
        if (r.ok()) {
          out += " '" + *r + "'";
        } else {
          out += lv::StrFormat(" %s '%s'", lv::ErrorCodeName(r.code()),
                               r.error().message.c_str());
        }
        break;
      }
      case StoreOp::kOpDir: {
        out += "dir " + op.path + " ->";
        auto d = store.Directory(op.path);
        if (d.ok()) {
          for (const std::string& child : *d) {
            out += " " + child;
          }
        } else {
          out += lv::StrFormat(" %s", lv::ErrorCodeName(d.code()));
        }
        break;
      }
      case StoreOp::kOpExists:
        out += lv::StrFormat("exists %s -> %d", op.path.c_str(),
                             store.Exists(op.path) ? 1 : 0);
        break;
      case StoreOp::kOpTxBegin: {
        xs::TxnId t = store.TxBegin();
        open.push_back(t);
        out += lv::StrFormat("txbegin -> %lld", (long long)t);
        break;
      }
      case StoreOp::kOpTxCommit:
      case StoreOp::kOpTxAbort: {
        bool abort = op.kind == StoreOp::kOpTxAbort;
        out += abort ? "txabort" : "txcommit";
        if (open.empty()) {
          out += " none";
          break;
        }
        size_t slot = static_cast<size_t>(op.pick) % open.size();
        xs::TxnId t = open[slot];
        open.erase(open.begin() + static_cast<long>(slot));
        out += lv::StrFormat(" %lld", (long long)t);
        RecordStatus(&out, store.TxCommit(t, abort, &hits));
        break;
      }
      case StoreOp::kOpWatchAdd: {
        out += lv::StrFormat("watch %lld %s %s", (long long)op.client, op.path.c_str(),
                             op.token.c_str());
        hits.push_back(store.AddWatch(op.client, op.path, op.token));
        break;
      }
      case StoreOp::kOpWatchRm:
        out += lv::StrFormat("unwatch %lld %s %s", (long long)op.client,
                             op.path.c_str(), op.token.c_str());
        store.RemoveWatch(op.client, op.path, op.token);
        break;
      case StoreOp::kOpWatchRmClient:
        out += lv::StrFormat("release %lld", (long long)op.client);
        store.RemoveClientWatches(op.client);
        break;
      case StoreOp::kOpUniqueName:
        out += "uniquename " + op.value;
        RecordStatus(&out, store.CheckUniqueName(op.value));
        break;
      case StoreOp::kOpReplay: {
        out += "replay";
        hits = store.ReplayWatches();
        break;
      }
    }
    for (const xs::WatchHit& h : hits) {
      out += lv::StrFormat(" [%lld %s %s %s]", (long long)h.client, h.watch_path.c_str(),
                           h.token.c_str(), h.fired_path.c_str());
    }
    out += lv::StrFormat(" | n=%lld w=%lld t=%lld g=%llu", (long long)store.num_nodes(),
                         (long long)store.num_watches(), (long long)store.open_txns(),
                         (unsigned long long)store.generation());
    for (int d = 0; d <= 4; ++d) {
      out += lv::StrFormat(" o%d=%lld", d, (long long)store.owner_nodes(d));
    }
    out += "\n";
  }
  return out;
}

// On mismatch, reports only the first diverging transcript line (the full
// transcripts run to hundreds of lines).
void ExpectTranscriptsEqual(const std::string& a, const std::string& b,
                            const char* what) {
  if (a == b) {
    return;
  }
  size_t line_start = 0;
  int line_no = 0;
  while (line_start < a.size() && line_start < b.size()) {
    size_t ea = a.find('\n', line_start);
    size_t eb = b.find('\n', line_start);
    std::string la = a.substr(line_start, ea - line_start);
    std::string lb = b.substr(line_start, eb - line_start);
    if (la != lb) {
      ADD_FAILURE() << what << ": first divergence at transcript line " << line_no
                    << "\n  a: " << la << "\n  b: " << lb;
      return;
    }
    line_start = ea + 1;
    ++line_no;
  }
  ADD_FAILURE() << what << ": one transcript is a strict prefix of the other";
}

class StorePolicyDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(StorePolicyDifferentialTest, LegacyAndIndexedTranscriptsMatch) {
  uint64_t seed = static_cast<uint64_t>(GetParam());
  std::vector<StoreOp> ops = GenStoreOps(seed, 300);
  // A third of the seeds run with a tight per-domain node quota so the
  // QUOTA_EXCEEDED surface (including the commit pre-pass) is differential
  // too.
  int64_t quota = (seed % 3 == 0) ? 12 : 0;
  std::string legacy = ApplyStoreOps(xs::StorePolicy::kLegacy, ops, quota);
  std::string indexed = ApplyStoreOps(xs::StorePolicy::kIndexed, ops, quota);
  ExpectTranscriptsEqual(legacy, indexed, "legacy vs indexed");
  // Same-seed determinism, per policy: a second run must be byte-identical.
  ExpectTranscriptsEqual(legacy, ApplyStoreOps(xs::StorePolicy::kLegacy, ops, quota),
                         "legacy determinism");
  ExpectTranscriptsEqual(indexed, ApplyStoreOps(xs::StorePolicy::kIndexed, ops, quota),
                         "indexed determinism");
}

INSTANTIATE_TEST_SUITE_P(Seeds, StorePolicyDifferentialTest, ::testing::Range(1, 101));

// --- Store permissions -----------------------------------------------------------

class StorePermissionTest : public ::testing::TestWithParam<int> {};

TEST_P(StorePermissionTest, GuestsCannotEscapeTheirSubtree) {
  hv::DomainId domid = GetParam();
  xs::Store store;
  std::string own = lv::StrFormat("/local/domain/%lld/data", (long long)domid);
  std::string other = lv::StrFormat("/local/domain/%lld/data", (long long)(domid + 1));
  EXPECT_TRUE(store.Write(own, "mine", domid).ok());
  EXPECT_EQ(store.Write(other, "attack", domid).code(), lv::ErrorCode::kPermissionDenied);
  EXPECT_EQ(store.Write("/local/domain/0/backend/vif", "attack", domid).code(),
            lv::ErrorCode::kPermissionDenied);
  EXPECT_EQ(store.Write("/tool/global", "attack", domid).code(),
            lv::ErrorCode::kPermissionDenied);
  // Dom0 can write anywhere, including the guest's tree.
  EXPECT_TRUE(store.Write(other, "legit", hv::kDom0).ok());
  // The guest can remove its own node but not the neighbor's.
  EXPECT_TRUE(store.Rm(own, xs::kNoTxn, nullptr, domid).ok());
  EXPECT_EQ(store.Rm(other, xs::kNoTxn, nullptr, domid).code(),
            lv::ErrorCode::kPermissionDenied);
}

INSTANTIATE_TEST_SUITE_P(DomainIds, StorePermissionTest, ::testing::Values(1, 7, 42, 999));

}  // namespace
