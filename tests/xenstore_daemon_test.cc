// Tests for the xenstored daemon: protocol costs, serialization, watch
// delivery, transaction retry behaviour and access-log rotation spikes.
#include <gtest/gtest.h>

#include <optional>

#include "src/base/strings.h"
#include "src/obs/obs.h"
#include "src/sim/cpu.h"
#include "src/sim/engine.h"
#include "src/xenstore/daemon.h"

namespace xs {
namespace {

using lv::Duration;
using lv::ErrorCode;
using lv::TimePoint;

class DaemonTest : public ::testing::Test {
 protected:
  DaemonTest() : cpu_(&engine_, 2) {}

  void StartDaemon(Costs costs = Costs()) {
    daemon_ = std::make_unique<Daemon>(&engine_, costs);
    daemon_->Start(sim::ExecCtx{&cpu_, 0, sim::kHostOwner});
    client_ = std::make_unique<XsClient>(&engine_, daemon_.get(), hv::kDom0);
  }

  void TearDown() override {
    if (daemon_ && daemon_->running()) {
      client_.reset();
      daemon_->Stop();
      engine_.Run();
    }
  }

  // Client work happens on core 1, daemon on core 0 (no CPU interference).
  sim::ExecCtx Ctx() { return sim::ExecCtx{&cpu_, 1, sim::kHostOwner}; }

  template <typename T>
  T RunCo(sim::Co<T> co) {
    std::optional<T> out;
    engine_.Spawn([](sim::Co<T> c, std::optional<T>& o) -> sim::Co<void> {
      o = co_await std::move(c);
    }(std::move(co), out));
    engine_.Run();
    LV_CHECK(out.has_value());
    return std::move(*out);
  }

  sim::Engine engine_;
  sim::CpuScheduler cpu_;
  std::unique_ptr<Daemon> daemon_;
  std::unique_ptr<XsClient> client_;
};

TEST_F(DaemonTest, WriteReadRoundTrip) {
  StartDaemon();
  EXPECT_TRUE(RunCo(client_->Write(Ctx(), "/local/domain/1/name", "vm1")).ok());
  auto r = RunCo(client_->Read(Ctx(), "/local/domain/1/name"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "vm1");
  EXPECT_EQ(daemon_->stats().ops, 2);
}

TEST_F(DaemonTest, EveryOpCostsInterruptsAndProcessing) {
  StartDaemon();
  TimePoint t0 = engine_.now();
  EXPECT_TRUE(RunCo(client_->Write(Ctx(), "/k", "v")).ok());
  Duration cost = engine_.now() - t0;
  // At least 4 soft interrupts (2 client + 2 daemon) + marshalling + base.
  Costs c;
  Duration floor = c.soft_interrupt * 4.0 + c.client_marshal * 2.0 + c.daemon_base;
  EXPECT_GE(cost.ns(), floor.ns());
  // And it should be well under a millisecond for an empty store.
  EXPECT_LT(cost.ms(), 1.0);
}

TEST_F(DaemonTest, RequestsAreSerializedThroughOneLoop) {
  StartDaemon();
  TimePoint t0 = engine_.now();
  int done = 0;
  XsClient* client = client_.get();
  sim::ExecCtx ctx = Ctx();
  for (int i = 0; i < 10; ++i) {
    engine_.Spawn([](XsClient* c, sim::ExecCtx ctx, int i, int& d) -> sim::Co<void> {
      (void)co_await c->Write(ctx, lv::StrFormat("/k/%d", i), "v");
      ++d;
    }(client, ctx, i, done));
  }
  engine_.Run();
  EXPECT_EQ(done, 10);
  // Ten concurrent ops must take ~10x the daemon processing time of one op
  // (they serialize), not ~1x.
  Duration elapsed = engine_.now() - t0;
  Costs c;
  Duration one_op_daemon = c.soft_interrupt * 2.0 + c.daemon_base + c.log_append;
  EXPECT_GE(elapsed.ns(), (one_op_daemon * 10.0).ns());
}

TEST_F(DaemonTest, WatchEventDeliveredToClient) {
  StartDaemon();
  EXPECT_TRUE(RunCo(client_->Watch(Ctx(), "/local/domain/7", "mytok")).ok());
  // Registration fires immediately once.
  engine_.Run();
  ASSERT_EQ(client_->pending_watch_events(), 1u);

  std::optional<WatchEvent> got;
  engine_.Spawn([](XsClient& c, std::optional<WatchEvent>& g) -> sim::Co<void> {
    g = co_await c.NextWatchEvent();  // Drain registration event.
    g = co_await c.NextWatchEvent();  // Wait for the real one.
  }(*client_, got));
  engine_.Run();

  EXPECT_TRUE(RunCo(client_->Write(Ctx(), "/local/domain/7/state", "4")).ok());
  engine_.Run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->token, "mytok");
  EXPECT_EQ(got->fired_path, "local/domain/7/state");
  EXPECT_EQ(daemon_->stats().watch_events, 2);
}

TEST_F(DaemonTest, TransactionConflictReportsConflictCode) {
  StartDaemon();
  TxnId txn = *RunCo(client_->TxBegin(Ctx()));
  ASSERT_TRUE(RunCo(client_->Write(Ctx(), "/c", "txn", txn)).ok());
  ASSERT_TRUE(RunCo(client_->Write(Ctx(), "/c", "direct")).ok());
  lv::Status commit = RunCo(client_->TxCommit(Ctx(), txn));
  EXPECT_EQ(commit.code(), ErrorCode::kConflict);
  EXPECT_EQ(daemon_->stats().conflicts, 1);
}

TEST_F(DaemonTest, UniqueNameRejectsDuplicate) {
  StartDaemon();
  EXPECT_TRUE(RunCo(client_->WriteUniqueName(Ctx(), 1, "web")).ok());
  lv::Status dup = RunCo(client_->WriteUniqueName(Ctx(), 2, "web"));
  EXPECT_EQ(dup.code(), ErrorCode::kAlreadyExists);
  EXPECT_TRUE(RunCo(client_->WriteUniqueName(Ctx(), 2, "web2")).ok());
}

TEST_F(DaemonTest, UniqueNameCostGrowsWithDomainCount) {
  StartDaemon();
  // Install 200 names cheaply (directly in the store; we measure the op).
  for (int i = 100; i < 300; ++i) {
    (void)daemon_->store().Write(lv::StrFormat("/local/domain/%d/name", i),
                                 lv::StrFormat("vm%d", i), hv::kDom0);
  }
  TimePoint t0 = engine_.now();
  EXPECT_TRUE(RunCo(client_->WriteUniqueName(Ctx(), 1, "first")).ok());
  Duration with_200 = engine_.now() - t0;

  for (int i = 300; i < 1100; ++i) {
    (void)daemon_->store().Write(lv::StrFormat("/local/domain/%d/name", i),
                                 lv::StrFormat("vm%d", i), hv::kDom0);
  }
  t0 = engine_.now();
  EXPECT_TRUE(RunCo(client_->WriteUniqueName(Ctx(), 2, "second")).ok());
  Duration with_1000 = engine_.now() - t0;
  EXPECT_GT(with_1000.ns(), with_200.ns() * 3);
}

TEST_F(DaemonTest, MutationCostGrowsWithWatchCount) {
  StartDaemon();
  TimePoint t0 = engine_.now();
  EXPECT_TRUE(RunCo(client_->Write(Ctx(), "/probe", "v")).ok());
  Duration no_watches = engine_.now() - t0;

  for (int i = 0; i < 3000; ++i) {
    (void)daemon_->store().AddWatch(99, lv::StrFormat("/w/%d", i), "t");
  }
  t0 = engine_.now();
  EXPECT_TRUE(RunCo(client_->Write(Ctx(), "/probe", "v2")).ok());
  Duration many_watches = engine_.now() - t0;
  EXPECT_GT(many_watches.ns(), no_watches.ns() * 5);
}

TEST_F(DaemonTest, LogRotationCausesSpike) {
  Costs costs;
  costs.log_rotate_lines = 100;  // Rotate quickly for the test.
  StartDaemon(costs);
  Duration max_op;
  Duration min_op = Duration::Seconds(999);
  for (int i = 0; i < 150; ++i) {
    TimePoint t0 = engine_.now();
    EXPECT_TRUE(RunCo(client_->Write(Ctx(), "/k", "v")).ok());
    Duration d = engine_.now() - t0;
    max_op = std::max(max_op, d);
    min_op = std::min(min_op, d);
  }
  EXPECT_EQ(daemon_->stats().rotations, 1);
  // The rotation op pays 20 * 15ms extra.
  EXPECT_GT(max_op.ms(), min_op.ms() + 250.0);
}

TEST_F(DaemonTest, DisablingLoggingRemovesRotation) {
  Costs costs;
  costs.logging_enabled = false;
  costs.log_rotate_lines = 10;
  StartDaemon(costs);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(RunCo(client_->Write(Ctx(), "/k", "v")).ok());
  }
  EXPECT_EQ(daemon_->stats().rotations, 0);
}

TEST_F(DaemonTest, MkdirAndDirectory) {
  StartDaemon();
  EXPECT_TRUE(RunCo(client_->Mkdir(Ctx(), "/backend/vif/3/0")).ok());
  EXPECT_TRUE(RunCo(client_->Write(Ctx(), "/backend/vif/3/1", "x")).ok());
  auto dir = RunCo(client_->Directory(Ctx(), "/backend/vif/3"));
  ASSERT_TRUE(dir.ok());
  EXPECT_EQ(*dir, (std::vector<std::string>{"0", "1"}));
}

TEST_F(DaemonTest, RmAndReadMissing) {
  StartDaemon();
  EXPECT_TRUE(RunCo(client_->Write(Ctx(), "/gone", "x")).ok());
  EXPECT_TRUE(RunCo(client_->Rm(Ctx(), "/gone")).ok());
  EXPECT_EQ(RunCo(client_->Read(Ctx(), "/gone")).code(), ErrorCode::kNotFound);
}

// --- Per-domain node quotas ---------------------------------------------------

TEST_F(DaemonTest, QuotaRejectionSurfacesTypedErrorAndStats) {
  obs::FlightRecorder::Get().Reset();
  StartDaemon();
  daemon_->store().set_node_quota(2);
  ASSERT_TRUE(RunCo(client_->Write(Ctx(), "/local/domain/9", "")).ok());
  auto guest = std::make_unique<XsClient>(&engine_, daemon_.get(), 9);
  // dom9 may create two nodes; the third is over budget.
  EXPECT_TRUE(RunCo(guest->Write(Ctx(), "/local/domain/9/a", "1")).ok());
  EXPECT_TRUE(RunCo(guest->Write(Ctx(), "/local/domain/9/b", "2")).ok());
  lv::Status over = RunCo(guest->Write(Ctx(), "/local/domain/9/c", "3"));
  EXPECT_EQ(over.code(), ErrorCode::kQuotaExceeded);
  EXPECT_FALSE(RunCo(guest->Read(Ctx(), "/local/domain/9/c")).ok());
  EXPECT_EQ(daemon_->stats().quota_rejects, 1);
  // The rejection lands in the flight recorder: layer "xenstore", verb
  // "quota.reject", arg = the offending domid.
  bool recorded = false;
  for (const obs::FlightEvent& e : obs::FlightRecorder::Get().NodeEvents(0)) {
    if (std::string(e.layer) == "xenstore" && std::string(e.verb) == "quota.reject") {
      EXPECT_FALSE(e.ok);
      EXPECT_EQ(e.arg, 9);
      recorded = true;
    }
  }
  EXPECT_TRUE(recorded);
  // Dom0 is exempt: the same write through the Dom0 client is admitted.
  EXPECT_TRUE(RunCo(client_->Write(Ctx(), "/local/domain/9/c", "3")).ok());
  guest.reset();
}

TEST_F(DaemonTest, QuotaRejectsMidTransactionAndRollsBackCleanly) {
  StartDaemon();
  daemon_->store().set_node_quota(2);
  ASSERT_TRUE(RunCo(client_->Write(Ctx(), "/local/domain/4", "")).ok());
  auto guest = std::make_unique<XsClient>(&engine_, daemon_.get(), 4);
  int64_t nodes_before = daemon_->store().num_nodes();
  TxnId txn = *RunCo(guest->TxBegin(Ctx()));
  ASSERT_TRUE(RunCo(guest->Write(Ctx(), "/local/domain/4/a", "1", txn)).ok());
  ASSERT_TRUE(RunCo(guest->Write(Ctx(), "/local/domain/4/b", "2", txn)).ok());
  ASSERT_TRUE(RunCo(guest->Write(Ctx(), "/local/domain/4/c", "3", txn)).ok());
  // The commit pre-pass rejects the whole batch before applying anything.
  lv::Status commit = RunCo(guest->TxCommit(Ctx(), txn));
  EXPECT_EQ(commit.code(), ErrorCode::kQuotaExceeded);
  EXPECT_EQ(daemon_->store().num_nodes(), nodes_before);
  EXPECT_FALSE(RunCo(guest->Read(Ctx(), "/local/domain/4/a")).ok());
  EXPECT_EQ(daemon_->store().open_txns(), 0);
  EXPECT_EQ(daemon_->store().owner_nodes(4), 0);
  EXPECT_EQ(daemon_->stats().quota_rejects, 1);
  // The guest can retry within budget.
  EXPECT_TRUE(RunCo(guest->Write(Ctx(), "/local/domain/4/a", "1")).ok());
  guest.reset();
}

TEST_F(DaemonTest, UnregisteredClientWatchesDropped) {
  StartDaemon();
  auto other = std::make_unique<XsClient>(&engine_, daemon_.get(), 5);
  EXPECT_TRUE(RunCo(other->Watch(Ctx(), "/d", "t")).ok());
  other.reset();  // Destructor unregisters + removes watches.
  EXPECT_TRUE(RunCo(client_->Write(Ctx(), "/d/x", "v")).ok());
  engine_.Run();
  // No crash, no event delivered anywhere.
  EXPECT_EQ(daemon_->store().num_watches(), 0);
}

}  // namespace
}  // namespace xs
