// Unit tests for the hypervisor substrate: memory pool, event channels,
// grant tables, domain lifecycle and the noxs device page.
#include <gtest/gtest.h>

#include "src/hv/hypervisor.h"
#include "src/sim/engine.h"

namespace hv {
namespace {

using lv::Bytes;
using lv::Duration;
using lv::ErrorCode;

class HvTest : public ::testing::Test {
 protected:
  HvTest() : cpu_(&engine_, 4), hv_(&engine_, Bytes::GiB(4)) {}

  sim::ExecCtx Ctx() { return sim::ExecCtx{&cpu_, 0, sim::kHostOwner}; }

  // Runs a coroutine returning T to completion and hands back the value.
  template <typename T>
  T RunCo(sim::Co<T> co) {
    std::optional<T> out;
    engine_.Spawn([](sim::Co<T> c, std::optional<T>& o) -> sim::Co<void> {
      o = co_await std::move(c);
    }(std::move(co), out));
    engine_.Run();
    LV_CHECK(out.has_value());
    return std::move(*out);
  }

  sim::Engine engine_;
  sim::CpuScheduler cpu_;
  Hypervisor hv_;
};

TEST_F(HvTest, MemoryPoolReserveRelease) {
  MemoryPool pool(Bytes::MiB(1));  // 256 pages
  EXPECT_EQ(pool.total_pages(), 256);
  EXPECT_TRUE(pool.Reserve(100).ok());
  EXPECT_EQ(pool.used_pages(), 100);
  EXPECT_EQ(pool.free_pages(), 156);
  EXPECT_TRUE(pool.Reserve(156).ok());
  EXPECT_EQ(pool.Reserve(1).code(), ErrorCode::kOutOfMemory);
  pool.Release(56);
  EXPECT_TRUE(pool.Reserve(56).ok());
}

TEST_F(HvTest, DomainCreateAssignsIncreasingIds) {
  DomainId a = *RunCo(hv_.DomainCreate(Ctx()));
  DomainId b = *RunCo(hv_.DomainCreate(Ctx()));
  EXPECT_LT(a, b);
  EXPECT_EQ(hv_.NumDomains(), 2);
  EXPECT_EQ(hv_.stats().domains_created, 2);
  EXPECT_EQ(hv_.FindDomain(a)->state(), DomainState::kBuilding);
}

TEST_F(HvTest, PopulatePhysmapReservesMemory) {
  DomainId id = *RunCo(hv_.DomainCreate(Ctx()));
  EXPECT_TRUE(RunCo(hv_.PopulatePhysmap(Ctx(), id, Bytes::MiB(8))).ok());
  EXPECT_EQ(hv_.FindDomain(id)->reserved_pages(), 2048);
  EXPECT_EQ(hv_.memory().used_pages(), 2048);
}

TEST_F(HvTest, PopulatePhysmapFailsWhenPoolExhausted) {
  DomainId id = *RunCo(hv_.DomainCreate(Ctx()));
  EXPECT_EQ(RunCo(hv_.PopulatePhysmap(Ctx(), id, Bytes::GiB(5))).code(),
            ErrorCode::kOutOfMemory);
  EXPECT_EQ(hv_.memory().used_pages(), 0);
}

TEST_F(HvTest, LifecycleBuildingToRunning) {
  DomainId id = *RunCo(hv_.DomainCreate(Ctx()));
  EXPECT_TRUE(RunCo(hv_.VcpuInit(Ctx(), id, {1})).ok());
  EXPECT_TRUE(RunCo(hv_.DomainFinishBuild(Ctx(), id)).ok());
  EXPECT_EQ(hv_.FindDomain(id)->state(), DomainState::kPaused);
  EXPECT_TRUE(RunCo(hv_.DomainUnpause(Ctx(), id)).ok());
  EXPECT_EQ(hv_.FindDomain(id)->state(), DomainState::kRunning);
}

TEST_F(HvTest, UnpauseSpawnsStartFnOnce) {
  DomainId id = *RunCo(hv_.DomainCreate(Ctx()));
  int boots = 0;
  hv_.FindDomain(id)->set_start_fn([&boots](Domain&) -> sim::Co<void> {
    ++boots;
    co_return;
  });
  EXPECT_TRUE(RunCo(hv_.DomainFinishBuild(Ctx(), id)).ok());
  EXPECT_TRUE(RunCo(hv_.DomainUnpause(Ctx(), id)).ok());
  EXPECT_EQ(boots, 1);
  EXPECT_TRUE(RunCo(hv_.DomainPause(Ctx(), id)).ok());
  EXPECT_TRUE(RunCo(hv_.DomainUnpause(Ctx(), id)).ok());
  EXPECT_EQ(boots, 1);  // Start function runs only on first unpause.
}

TEST_F(HvTest, UnpauseRequiresPausedState) {
  DomainId id = *RunCo(hv_.DomainCreate(Ctx()));
  EXPECT_EQ(RunCo(hv_.DomainUnpause(Ctx(), id)).code(), ErrorCode::kInvalidArgument);
}

TEST_F(HvTest, ShutdownSuspendKeepsDomainRestorable) {
  DomainId id = *RunCo(hv_.DomainCreate(Ctx()));
  EXPECT_TRUE(RunCo(hv_.DomainFinishBuild(Ctx(), id)).ok());
  EXPECT_TRUE(RunCo(hv_.DomainUnpause(Ctx(), id)).ok());
  EXPECT_TRUE(RunCo(hv_.DomainShutdown(Ctx(), id, ShutdownReason::kSuspend)).ok());
  EXPECT_EQ(hv_.FindDomain(id)->state(), DomainState::kSuspended);
  EXPECT_TRUE(RunCo(hv_.DomainShutdown(Ctx(), id, ShutdownReason::kPoweroff)).ok());
  EXPECT_EQ(hv_.FindDomain(id)->state(), DomainState::kShutdown);
}

TEST_F(HvTest, DestroyReleasesMemory) {
  DomainId id = *RunCo(hv_.DomainCreate(Ctx()));
  EXPECT_TRUE(RunCo(hv_.PopulatePhysmap(Ctx(), id, Bytes::MiB(16))).ok());
  EXPECT_GT(hv_.memory().used_pages(), 0);
  EXPECT_TRUE(RunCo(hv_.DomainDestroy(Ctx(), id)).ok());
  EXPECT_EQ(hv_.memory().used_pages(), 0);
  EXPECT_EQ(hv_.FindDomain(id), nullptr);
  EXPECT_EQ(hv_.stats().domains_destroyed, 1);
}

TEST_F(HvTest, OperationsOnMissingDomainFail) {
  EXPECT_EQ(RunCo(hv_.DomainGetInfo(Ctx(), 42)).code(), ErrorCode::kNotFound);
  EXPECT_EQ(RunCo(hv_.DomainDestroy(Ctx(), 42)).code(), ErrorCode::kNotFound);
  EXPECT_EQ(RunCo(hv_.PopulatePhysmap(Ctx(), 42, Bytes::MiB(1))).code(),
            ErrorCode::kNotFound);
}

TEST_F(HvTest, ListDomainsReturnsCreationOrder) {
  std::vector<DomainId> ids;
  for (int i = 0; i < 5; ++i) {
    ids.push_back(*RunCo(hv_.DomainCreate(Ctx())));
  }
  auto list = *RunCo(hv_.ListDomains(Ctx()));
  ASSERT_EQ(list.size(), 5u);
  for (size_t i = 0; i < list.size(); ++i) {
    EXPECT_EQ(list[i].id, ids[i]);
  }
}

TEST_F(HvTest, ListDomainsCostScalesWithCount) {
  for (int i = 0; i < 100; ++i) {
    (void)*RunCo(hv_.DomainCreate(Ctx()));
  }
  lv::TimePoint before = engine_.now();
  (void)*RunCo(hv_.ListDomains(Ctx()));
  Duration cost_100 = engine_.now() - before;
  for (int i = 0; i < 900; ++i) {
    (void)*RunCo(hv_.DomainCreate(Ctx()));
  }
  before = engine_.now();
  (void)*RunCo(hv_.ListDomains(Ctx()));
  Duration cost_1000 = engine_.now() - before;
  EXPECT_GT(cost_1000.ns(), cost_100.ns() * 4);
}

TEST_F(HvTest, CopyToDomainCostProportionalToSize) {
  DomainId id = *RunCo(hv_.DomainCreate(Ctx()));
  lv::TimePoint t0 = engine_.now();
  EXPECT_TRUE(RunCo(hv_.CopyToDomain(Ctx(), id, Bytes::MiB(1))).ok());
  Duration small = engine_.now() - t0;
  t0 = engine_.now();
  EXPECT_TRUE(RunCo(hv_.CopyToDomain(Ctx(), id, Bytes::MiB(100))).ok());
  Duration large = engine_.now() - t0;
  // ~100x the pages => ~100x the cost (modulo the fixed hypercall cost).
  EXPECT_GT(large.ns(), small.ns() * 50);
}

// --- noxs device page ------------------------------------------------------

TEST_F(HvTest, DevicePageWriteRequiresDom0) {
  DomainId id = *RunCo(hv_.DomainCreate(Ctx()));
  DeviceInfo info;
  info.type = DeviceType::kNet;
  auto denied = RunCo(hv_.DevicePageWrite(Ctx(), /*caller=*/id, id, info));
  EXPECT_EQ(denied.code(), ErrorCode::kPermissionDenied);
  auto ok = RunCo(hv_.DevicePageWrite(Ctx(), kDom0, id, info));
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 0);
}

TEST_F(HvTest, DevicePageRoundTrip) {
  DomainId id = *RunCo(hv_.DomainCreate(Ctx()));
  DeviceInfo net;
  net.type = DeviceType::kNet;
  net.event_channel = 7;
  net.grant_ref = 9;
  DeviceInfo sysctl;
  sysctl.type = DeviceType::kSysctl;
  (void)*RunCo(hv_.DevicePageWrite(Ctx(), kDom0, id, net));
  (void)*RunCo(hv_.DevicePageWrite(Ctx(), kDom0, id, sysctl));
  auto entries = *RunCo(hv_.DevicePageRead(Ctx(), id));
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].type, DeviceType::kNet);
  EXPECT_EQ(entries[0].event_channel, 7);
  EXPECT_EQ(entries[0].grant_ref, 9);
  EXPECT_EQ(entries[1].type, DeviceType::kSysctl);
}

TEST_F(HvTest, DevicePageCapacityEnforced) {
  DomainId id = *RunCo(hv_.DomainCreate(Ctx()));
  DeviceInfo info;
  for (int i = 0; i < kDevicePageCapacity; ++i) {
    EXPECT_TRUE(RunCo(hv_.DevicePageWrite(Ctx(), kDom0, id, info)).ok());
  }
  EXPECT_EQ(RunCo(hv_.DevicePageWrite(Ctx(), kDom0, id, info)).code(),
            ErrorCode::kUnavailable);
}

// --- Event channels ---------------------------------------------------------

TEST_F(HvTest, EventChannelNotifyDeliversToOtherSide) {
  Port port = hv_.event_channels().Alloc(kDom0, 5);
  int dom0_irqs = 0;
  int guest_irqs = 0;
  EXPECT_TRUE(hv_.event_channels().Bind(port, kDom0, [&] { ++dom0_irqs; }).ok());
  EXPECT_TRUE(hv_.event_channels().Bind(port, 5, [&] { ++guest_irqs; }).ok());
  EXPECT_TRUE(RunCo(hv_.event_channels().Notify(Ctx(), port, kDom0)).ok());
  EXPECT_EQ(guest_irqs, 1);
  EXPECT_EQ(dom0_irqs, 0);
  EXPECT_TRUE(RunCo(hv_.event_channels().Notify(Ctx(), port, 5)).ok());
  EXPECT_EQ(dom0_irqs, 1);
  EXPECT_EQ(guest_irqs, 1);
}

TEST_F(HvTest, EventChannelRejectsNonEndpoint) {
  Port port = hv_.event_channels().Alloc(kDom0, 5);
  EXPECT_EQ(RunCo(hv_.event_channels().Notify(Ctx(), port, 6)).code(),
            ErrorCode::kPermissionDenied);
  EXPECT_EQ(hv_.event_channels().Bind(port, 6, [] {}).code(),
            ErrorCode::kPermissionDenied);
}

TEST_F(HvTest, EventChannelCloseInvalidatesPort) {
  Port port = hv_.event_channels().Alloc(kDom0, 5);
  EXPECT_TRUE(hv_.event_channels().IsOpen(port));
  EXPECT_TRUE(hv_.event_channels().Close(port).ok());
  EXPECT_FALSE(hv_.event_channels().IsOpen(port));
  EXPECT_EQ(RunCo(hv_.event_channels().Notify(Ctx(), port, kDom0)).code(),
            ErrorCode::kNotFound);
}

// --- Grant table -------------------------------------------------------------

TEST_F(HvTest, GrantMapUnmapRevoke) {
  GrantTable& gt = hv_.grant_table();
  GrantRef ref = gt.Grant(/*owner=*/5, /*grantee=*/kDom0);
  EXPECT_TRUE(gt.IsActive(ref));
  EXPECT_EQ(gt.Map(/*mapper=*/3, ref).code(), ErrorCode::kPermissionDenied);
  EXPECT_TRUE(gt.Map(kDom0, ref).ok());
  EXPECT_TRUE(gt.IsMapped(ref));
  EXPECT_EQ(gt.Map(kDom0, ref).code(), ErrorCode::kAlreadyExists);
  EXPECT_EQ(gt.Revoke(ref).code(), ErrorCode::kUnavailable);  // Still mapped.
  EXPECT_TRUE(gt.Unmap(kDom0, ref).ok());
  EXPECT_TRUE(gt.Revoke(ref).ok());
  EXPECT_FALSE(gt.IsActive(ref));
}

TEST_F(HvTest, GrantsOwnedByCountsPerDomain) {
  GrantTable& gt = hv_.grant_table();
  gt.Grant(5, kDom0);
  gt.Grant(5, kDom0);
  gt.Grant(6, kDom0);
  EXPECT_EQ(gt.GrantsOwnedBy(5), 2);
  EXPECT_EQ(gt.GrantsOwnedBy(6), 1);
  EXPECT_EQ(gt.GrantsOwnedBy(7), 0);
}

// --- §9 extension: page sharing ----------------------------------------------

TEST_F(HvTest, SharedPopulateReservesTemplateOnce) {
  DomainId a = *RunCo(hv_.DomainCreate(Ctx()));
  DomainId b = *RunCo(hv_.DomainCreate(Ctx()));
  Bytes mem = Bytes::MiB(8);  // 2048 pages
  ASSERT_TRUE(RunCo(hv_.PopulatePhysmapShared(Ctx(), a, mem, "daytime", 0.75)).ok());
  // First domain: full reservation (512 private + 1536 shared).
  EXPECT_EQ(hv_.memory().used_pages(), 2048);
  EXPECT_EQ(hv_.num_shared_templates(), 1);
  EXPECT_EQ(hv_.shared_template_pages(), 1536);

  ASSERT_TRUE(RunCo(hv_.PopulatePhysmapShared(Ctx(), b, mem, "daytime", 0.75)).ok());
  // Second domain adds only its private pages.
  EXPECT_EQ(hv_.memory().used_pages(), 2048 + 512);
}

TEST_F(HvTest, SharedTemplateFreedWithLastDomain) {
  DomainId a = *RunCo(hv_.DomainCreate(Ctx()));
  DomainId b = *RunCo(hv_.DomainCreate(Ctx()));
  Bytes mem = Bytes::MiB(8);
  ASSERT_TRUE(RunCo(hv_.PopulatePhysmapShared(Ctx(), a, mem, "t", 0.5)).ok());
  ASSERT_TRUE(RunCo(hv_.PopulatePhysmapShared(Ctx(), b, mem, "t", 0.5)).ok());
  ASSERT_TRUE(RunCo(hv_.DomainDestroy(Ctx(), a)).ok());
  // Template survives while b still references it.
  EXPECT_EQ(hv_.num_shared_templates(), 1);
  EXPECT_EQ(hv_.memory().used_pages(), 1024 + 1024);  // b's private + shared
  ASSERT_TRUE(RunCo(hv_.DomainDestroy(Ctx(), b)).ok());
  EXPECT_EQ(hv_.num_shared_templates(), 0);
  EXPECT_EQ(hv_.memory().used_pages(), 0);
}

TEST_F(HvTest, SharedPopulateDistinctTemplatesIndependent) {
  DomainId a = *RunCo(hv_.DomainCreate(Ctx()));
  DomainId b = *RunCo(hv_.DomainCreate(Ctx()));
  Bytes mem = Bytes::MiB(4);
  ASSERT_TRUE(RunCo(hv_.PopulatePhysmapShared(Ctx(), a, mem, "t1", 0.5)).ok());
  ASSERT_TRUE(RunCo(hv_.PopulatePhysmapShared(Ctx(), b, mem, "t2", 0.5)).ok());
  EXPECT_EQ(hv_.num_shared_templates(), 2);
  EXPECT_EQ(hv_.memory().used_pages(), 2048);  // No sharing across templates.
}

TEST_F(HvTest, SharedPopulateValidatesFraction) {
  DomainId a = *RunCo(hv_.DomainCreate(Ctx()));
  EXPECT_EQ(RunCo(hv_.PopulatePhysmapShared(Ctx(), a, Bytes::MiB(1), "t", 1.5)).code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(RunCo(hv_.PopulatePhysmapShared(Ctx(), a, Bytes::MiB(1), "t", -0.1)).code(),
            ErrorCode::kInvalidArgument);
}

TEST_F(HvTest, SharedPopulateSecondDomainIsCheaper) {
  DomainId a = *RunCo(hv_.DomainCreate(Ctx()));
  DomainId b = *RunCo(hv_.DomainCreate(Ctx()));
  Bytes mem = Bytes::MiB(64);
  lv::TimePoint t0 = engine_.now();
  ASSERT_TRUE(RunCo(hv_.PopulatePhysmapShared(Ctx(), a, mem, "big", 0.9)).ok());
  Duration first = engine_.now() - t0;
  t0 = engine_.now();
  ASSERT_TRUE(RunCo(hv_.PopulatePhysmapShared(Ctx(), b, mem, "big", 0.9)).ok());
  Duration second = engine_.now() - t0;
  EXPECT_GT(first.ns(), second.ns() * 5);  // Only 10% of pages populated.
}

TEST_F(HvTest, HypercallsAreCounted) {
  int64_t before = hv_.stats().hypercalls;
  (void)*RunCo(hv_.DomainCreate(Ctx()));
  (void)RunCo(hv_.DomainGetInfo(Ctx(), 1));
  EXPECT_EQ(hv_.stats().hypercalls, before + 2);
}

}  // namespace
}  // namespace hv
