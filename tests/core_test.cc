// End-to-end integration tests: full hosts with every mechanism combination
// from Figure 9 — create/boot, destroy, save/restore, migrate — plus the
// invariants the paper's design promises (noxs never touches a store; the
// split toolstack's pool refills; LightVM beats xl by orders of magnitude).
#include <gtest/gtest.h>

#include "src/base/strings.h"
#include "src/core/host.h"
#include "src/sim/run.h"

namespace lightvm {
namespace {

using lv::Bytes;
using lv::Duration;
using lv::TimePoint;

toolstack::VmConfig DaytimeConfig(const std::string& name) {
  toolstack::VmConfig config;
  config.name = name;
  config.image = guests::DaytimeUnikernel();
  return config;
}

class CoreTest : public ::testing::Test {
 public:
  template <typename T>
  T Run(sim::Co<T> co) {
    return sim::RunToCompletion(engine_, std::move(co));
  }

  std::unique_ptr<Host> MakeHost(Mechanisms mechanisms,
                                 HostSpec spec = HostSpec::Xeon4Core()) {
    auto host = std::make_unique<Host>(&engine_, spec, mechanisms);
    if (mechanisms.split) {
      host->AddShellFlavor(guests::DaytimeUnikernel().memory, true, 4);
      host->PrefillShellPool();
    }
    return host;
  }

  // Creates a VM and waits until booted; returns (domid, create+boot time).
  std::pair<hv::DomainId, Duration> CreateBootTimed(Host& host,
                                                    toolstack::VmConfig config) {
    TimePoint t0 = engine_.now();
    auto domid = Run(host.CreateAndBoot(std::move(config)));
    LV_CHECK_MSG(domid.ok(), domid.ok() ? "" : domid.error().message.c_str());
    return {*domid, engine_.now() - t0};
  }

  sim::Engine engine_;
};

TEST_F(CoreTest, MechanismLabels) {
  EXPECT_EQ(Mechanisms::Xl().label(), "xl");
  EXPECT_EQ(Mechanisms::ChaosXs().label(), "chaos [XS]");
  EXPECT_EQ(Mechanisms::ChaosXsSplit().label(), "chaos [XS+split]");
  EXPECT_EQ(Mechanisms::ChaosNoxs().label(), "chaos [NoXS]");
  EXPECT_EQ(Mechanisms::LightVm().label(), "chaos [NoXS+split] (LightVM)");
}

TEST_F(CoreTest, XlCreatesAndBootsUnikernel) {
  auto host = MakeHost(Mechanisms::Xl());
  auto [domid, elapsed] = CreateBootTimed(*host, DaytimeConfig("vm0"));
  EXPECT_EQ(host->num_vms(), 1);
  EXPECT_TRUE(host->guest(domid)->booted());
  EXPECT_TRUE(host->netback().IsConnected(domid));
  // xl pays config parsing, ~20 store records, bash hotplug: tens of ms.
  EXPECT_GT(elapsed.ms(), 20.0);
  EXPECT_LT(elapsed.ms(), 300.0);
  // The breakdown's phases are all populated.
  const toolstack::CreateBreakdown& bd = host->toolstack().last_breakdown();
  EXPECT_GT(bd.config.ns(), 0);
  EXPECT_GT(bd.hypervisor.ns(), 0);
  EXPECT_GT(bd.xenstore.ns(), 0);
  EXPECT_GT(bd.devices.ns(), 0);
  EXPECT_GT(bd.load.ns(), 0);
  // Devices dominate at low VM counts (bash hotplug), as in Figure 5.
  EXPECT_GT(bd.devices.ns(), bd.xenstore.ns());
}

TEST_F(CoreTest, LightVmCreatesInMilliseconds) {
  auto host = MakeHost(Mechanisms::LightVm());
  auto [domid, elapsed] = CreateBootTimed(*host, DaytimeConfig("vm0"));
  EXPECT_TRUE(host->guest(domid)->booted());
  // Paper: ~4 ms for the daytime unikernel with all optimizations.
  EXPECT_LT(elapsed.ms(), 10.0);
  EXPECT_GT(elapsed.ms(), 1.0);
  // No store exists at all in noxs mode.
  EXPECT_EQ(host->store(), nullptr);
}

TEST_F(CoreTest, LightVmVsXlSpeedup) {
  auto xl = MakeHost(Mechanisms::Xl());
  auto lightvm = MakeHost(Mechanisms::LightVm());
  auto [xl_id, xl_time] = CreateBootTimed(*xl, DaytimeConfig("vm0"));
  auto [lv_id, lv_time] = CreateBootTimed(*lightvm, DaytimeConfig("vm0"));
  // "two orders of magnitude faster than Docker", and >10x faster than xl
  // even at N=0.
  EXPECT_GT(xl_time.ns(), lv_time.ns() * 10);
}

TEST_F(CoreTest, EveryMechanismCreatesSuccessfully) {
  for (Mechanisms m : {Mechanisms::Xl(), Mechanisms::ChaosXs(), Mechanisms::ChaosXsSplit(),
                       Mechanisms::ChaosNoxs(), Mechanisms::LightVm()}) {
    auto host = MakeHost(m);
    auto [domid, elapsed] = CreateBootTimed(*host, DaytimeConfig("vm-" + m.label()));
    EXPECT_TRUE(host->guest(domid)->booted()) << m.label();
    EXPECT_TRUE(Run(host->DestroyVm(domid)).ok()) << m.label();
    EXPECT_EQ(host->num_vms(), 0) << m.label();
  }
}

TEST_F(CoreTest, SplitPoolRefillsAfterTake) {
  auto host = MakeHost(Mechanisms::LightVm());
  ASSERT_EQ(host->chaos_daemon()->pool_size(), 4);
  auto [domid, elapsed] = CreateBootTimed(*host, DaytimeConfig("vm0"));
  (void)domid;
  // The daemon refills in the background.
  bool refilled = sim::RunUntilCondition(
      engine_, [&] { return host->chaos_daemon()->pool_size() >= 4; },
      Duration::Seconds(10));
  EXPECT_TRUE(refilled);
  EXPECT_GE(host->chaos_daemon()->shells_built(), 5);
}

TEST_F(CoreTest, SplitPoolMissFallsBackInline) {
  auto host = std::make_unique<Host>(&engine_, HostSpec::Xeon4Core(),
                                     Mechanisms::LightVm());
  // No flavors configured: every create is a pool miss, but still succeeds.
  auto domid = Run(host->CreateAndBoot(DaytimeConfig("vm0")));
  ASSERT_TRUE(domid.ok());
  EXPECT_TRUE(host->guest(*domid)->booted());
}

TEST_F(CoreTest, UniqueNamesEnforcedUnderXenstore) {
  auto host = MakeHost(Mechanisms::Xl());
  auto first = Run(host->CreateVm(DaytimeConfig("dup")));
  ASSERT_TRUE(first.ok());
  auto second = Run(host->CreateVm(DaytimeConfig("dup")));
  EXPECT_FALSE(second.ok());
  EXPECT_EQ(second.code(), lv::ErrorCode::kAlreadyExists);
}

TEST_F(CoreTest, MemoryAccountingTracksGuests) {
  auto host = MakeHost(Mechanisms::ChaosNoxs());
  lv::Bytes before = host->MemoryUsed();
  auto [domid, elapsed] = CreateBootTimed(*host, DaytimeConfig("vm0"));
  lv::Bytes with_vm = host->MemoryUsed();
  EXPECT_GT((with_vm - before).mib(), 3.0);  // ~3.6 MB reservation.
  ASSERT_TRUE(Run(host->DestroyVm(domid)).ok());
  EXPECT_EQ(host->MemoryUsed(), before);
}

TEST_F(CoreTest, PageSharingReducesMemoryFootprint) {
  auto baseline = MakeHost(Mechanisms::LightVm());
  auto shared = MakeHost(Mechanisms::LightVmShared());
  for (int i = 0; i < 20; ++i) {
    (void)CreateBootTimed(*baseline, DaytimeConfig(lv::StrFormat("b%d", i)));
    (void)CreateBootTimed(*shared, DaytimeConfig(lv::StrFormat("s%d", i)));
  }
  lv::Bytes base_used = baseline->MemoryUsed() - baseline->spec().dom0_memory;
  lv::Bytes shared_used = shared->MemoryUsed() - shared->spec().dom0_memory;
  // 75% of each VM's pages are deduplicated against the flavor template.
  EXPECT_LT(shared_used.mib(), base_used.mib() * 0.5);
  // Guests still boot and destroy cleanly.
  EXPECT_EQ(shared->num_vms(), 20);
  EXPECT_EQ(shared->mechanisms().label(),
            "chaos [NoXS+split] (LightVM) +page-sharing");
}

TEST_F(CoreTest, SaveAndRestoreRoundTrip) {
  for (Mechanisms m : {Mechanisms::Xl(), Mechanisms::LightVm()}) {
    auto host = MakeHost(m);
    auto [domid, elapsed] = CreateBootTimed(*host, DaytimeConfig("vm0"));
    TimePoint t0 = engine_.now();
    auto snap = Run(host->SaveVm(domid));
    ASSERT_TRUE(snap.ok()) << m.label();
    Duration save_time = engine_.now() - t0;
    EXPECT_EQ(host->num_vms(), 0) << m.label();

    t0 = engine_.now();
    auto restored = Run(host->RestoreVm(*snap));
    ASSERT_TRUE(restored.ok()) << m.label();
    Duration restore_time = engine_.now() - t0;
    EXPECT_EQ(host->num_vms(), 1) << m.label();
    Run(host->WaitBooted(*restored));
    EXPECT_TRUE(host->guest(*restored)->booted()) << m.label();

    if (m.noxs) {
      // LightVM: ~30 ms save / ~20 ms restore in the paper.
      EXPECT_LT(save_time.ms(), 60.0) << m.label();
      EXPECT_LT(restore_time.ms(), 40.0) << m.label();
    } else {
      // xl is several times slower (128 ms / 550 ms in the paper).
      EXPECT_GT(save_time.ms(), 30.0) << m.label();
      EXPECT_GT(restore_time.ms(), 40.0) << m.label();
    }
  }
}

TEST_F(CoreTest, MigrationMovesVmBetweenHosts) {
  auto src = MakeHost(Mechanisms::LightVm());
  auto dst = MakeHost(Mechanisms::LightVm());
  xnet::Link link(&engine_, /*gbps=*/10.0, Duration::MillisF(0.2));

  auto [domid, elapsed] = CreateBootTimed(*src, DaytimeConfig("mig0"));
  TimePoint t0 = engine_.now();
  lv::Status migrated = Run(src->MigrateVm(domid, dst.get(), &link));
  ASSERT_TRUE(migrated.ok());
  Duration migration_time = engine_.now() - t0;

  EXPECT_EQ(src->num_vms(), 0);
  EXPECT_EQ(dst->num_vms(), 1);
  EXPECT_EQ(dst->migration_daemon().migrations_received(), 1);
  // LightVM migrates the daytime unikernel in ~60 ms.
  EXPECT_LT(migration_time.ms(), 150.0);
}

TEST_F(CoreTest, XlMigrationMuchSlowerThanLightVm) {
  auto xl_src = MakeHost(Mechanisms::Xl());
  auto xl_dst = MakeHost(Mechanisms::Xl());
  auto lv_src = MakeHost(Mechanisms::LightVm());
  auto lv_dst = MakeHost(Mechanisms::LightVm());
  xnet::Link link(&engine_, 10.0, Duration::MillisF(0.2));

  auto [xl_id, e1] = CreateBootTimed(*xl_src, DaytimeConfig("m0"));
  TimePoint t0 = engine_.now();
  ASSERT_TRUE(Run(xl_src->MigrateVm(xl_id, xl_dst.get(), &link)).ok());
  Duration xl_time = engine_.now() - t0;

  auto [lv_id, e2] = CreateBootTimed(*lv_src, DaytimeConfig("m0"));
  t0 = engine_.now();
  ASSERT_TRUE(Run(lv_src->MigrateVm(lv_id, lv_dst.get(), &link)).ok());
  Duration lv_time = engine_.now() - t0;

  EXPECT_GT(xl_time.ns(), lv_time.ns() * 3);
}

TEST_F(CoreTest, DensityManySmallVms) {
  auto host = MakeHost(Mechanisms::LightVm());
  for (int i = 0; i < 50; ++i) {
    auto domid = Run(host->CreateAndBoot(DaytimeConfig(lv::StrFormat("d%d", i))));
    ASSERT_TRUE(domid.ok()) << i;
  }
  EXPECT_EQ(host->num_vms(), 50);
  EXPECT_EQ(host->hv().NumDomainsInState(hv::DomainState::kRunning), 50);
  // Pool shells sit pre-created in the building state (one may be mid-build
  // inside the daemon when we look).
  EXPECT_GE(host->hv().NumDomainsInState(hv::DomainState::kBuilding),
            host->chaos_daemon()->pool_size());
}

TEST_F(CoreTest, CreationTimeStaysFlatUnderLightVm) {
  auto host = MakeHost(Mechanisms::LightVm());
  Duration first;
  Duration last;
  for (int i = 0; i < 100; ++i) {
    auto [domid, elapsed] = CreateBootTimed(*host, DaytimeConfig(lv::StrFormat("f%d", i)));
    if (i == 0) {
      first = elapsed;
    }
    last = elapsed;
  }
  // "boot times as low as 4ms going up to just 4.1ms for the 1,000th VM".
  EXPECT_LT(last.ns(), first.ns() * 2);
}

// Concurrent-job lifecycle: overlapping creates, destroys and a migration
// submitted through the NodeApi job layer must interleave safely on every
// toolstack variant — and leave no domains, pages, grants or channels behind.
TEST_F(CoreTest, ConcurrentLifecycleJobsAcrossMechanisms) {
  for (Mechanisms m : {Mechanisms::Xl(), Mechanisms::ChaosXs(), Mechanisms::ChaosNoxs(),
                       Mechanisms::LightVm()}) {
    auto src = MakeHost(m);
    auto dst = MakeHost(m);
    xnet::Link link(&engine_, 10.0, Duration::MillisF(0.2));
    lv::Bytes baseline = src->MemoryUsed();
    int64_t channels = src->hv().event_channels().open_channels();
    int64_t grants = src->hv().grant_table().active_grants();

    // Phase 1: six creates in flight at once.
    std::vector<CreateJob> creates;
    for (int i = 0; i < 6; ++i) {
      creates.push_back(
          src->node().SubmitCreate(DaytimeConfig(lv::StrFormat("j%d", i)), true));
    }
    ASSERT_TRUE(sim::RunUntilCondition(
        engine_,
        [&] {
          for (CreateJob& job : creates) {
            if (!job.has_value()) {
              return false;
            }
          }
          return true;
        },
        Duration::Seconds(60)))
        << m.label();
    std::vector<hv::DomainId> ids;
    for (CreateJob& job : creates) {
      ASSERT_TRUE(job.value().ok()) << m.label() << ": " << job.value().error().message;
      ids.push_back(*job.value());
    }
    EXPECT_EQ(src->num_vms(), 6) << m.label();
    EXPECT_EQ(src->node().jobs_started(), 6) << m.label();
    EXPECT_EQ(src->node().jobs_completed(), 6) << m.label();
    EXPECT_EQ(src->node().jobs_failed(), 0) << m.label();

    // Phase 2: destroys, a migration and fresh creates all overlapping.
    std::vector<StatusJob> destroys;
    for (int i = 0; i < 3; ++i) {
      destroys.push_back(src->node().SubmitDestroy(ids[static_cast<size_t>(i)]));
    }
    StatusJob migrate = src->node().SubmitMigrate(ids[3], &dst->node(), &link);
    std::vector<CreateJob> more;
    for (int i = 6; i < 8; ++i) {
      more.push_back(
          src->node().SubmitCreate(DaytimeConfig(lv::StrFormat("j%d", i)), true));
    }
    ASSERT_TRUE(sim::RunUntilCondition(
        engine_,
        [&] {
          for (StatusJob& job : destroys) {
            if (!job.has_value()) {
              return false;
            }
          }
          for (CreateJob& job : more) {
            if (!job.has_value()) {
              return false;
            }
          }
          return migrate.has_value();
        },
        Duration::Seconds(60)))
        << m.label();
    for (StatusJob& job : destroys) {
      EXPECT_TRUE(job.value().ok()) << m.label();
    }
    EXPECT_TRUE(migrate.value().ok()) << m.label();
    EXPECT_EQ(dst->num_vms(), 1) << m.label();
    EXPECT_EQ(dst->migration_daemon().migrations_received(), 1) << m.label();
    for (CreateJob& job : more) {
      ASSERT_TRUE(job.value().ok()) << m.label();
      ids.push_back(*job.value());
    }

    // Phase 3: tear the rest down; resources must return to baseline.
    EXPECT_EQ(src->num_vms(), 4) << m.label();  // 6 - 3 destroyed - 1 migrated + 2.
    for (hv::DomainId id : {ids[4], ids[5], ids[6], ids[7]}) {
      ASSERT_TRUE(Run(src->DestroyVm(id)).ok()) << m.label();
    }
    EXPECT_EQ(src->num_vms(), 0) << m.label();
    EXPECT_EQ(src->MemoryUsed(), baseline) << m.label();
    EXPECT_EQ(src->hv().event_channels().open_channels(), channels) << m.label();
    EXPECT_EQ(src->hv().grant_table().active_grants(), grants) << m.label();
    EXPECT_EQ(src->hv().NumDomainsInState(hv::DomainState::kDead), 0) << m.label();
  }
}

// Two destroy jobs for the same domain: the in-flight guard lets exactly one
// proceed; the other fails with kUnavailable instead of racing the teardown.
TEST_F(CoreTest, ConcurrentDestroyJobsAreMutuallyExclusive) {
  auto host = MakeHost(Mechanisms::LightVm());
  auto [domid, elapsed] = CreateBootTimed(*host, DaytimeConfig("vm0"));
  StatusJob first = host->node().SubmitDestroy(domid);
  StatusJob second = host->node().SubmitDestroy(domid);
  ASSERT_TRUE(sim::RunUntilCondition(
      engine_, [&] { return first.has_value() && second.has_value(); },
      Duration::Seconds(10)));
  EXPECT_TRUE(first.value().ok());
  EXPECT_EQ(second.value().code(), lv::ErrorCode::kUnavailable);
  EXPECT_EQ(host->num_vms(), 0);
  EXPECT_EQ(host->node().jobs_failed(), 1);
}

// The same concurrent workload on two same-seed engines produces identical
// domain ids and identical virtual timing.
TEST_F(CoreTest, ConcurrentJobsAreDeterministic) {
  auto run_once = [](Mechanisms m) {
    sim::Engine engine(42);
    Host host(&engine, HostSpec::Xeon4Core(), m);
    if (m.split) {
      host.AddShellFlavor(guests::DaytimeUnikernel().memory, true, 4);
      host.PrefillShellPool();
    }
    std::vector<CreateJob> jobs;
    for (int i = 0; i < 8; ++i) {
      jobs.push_back(
          host.node().SubmitCreate(DaytimeConfig(lv::StrFormat("d%d", i)), true));
    }
    bool done = sim::RunUntilCondition(
        engine,
        [&] {
          for (CreateJob& job : jobs) {
            if (!job.has_value()) {
              return false;
            }
          }
          return true;
        },
        Duration::Seconds(60));
    LV_CHECK(done);
    std::vector<hv::DomainId> ids;
    for (CreateJob& job : jobs) {
      ids.push_back(job.value().ok() ? *job.value() : hv::kInvalidDomain);
    }
    return std::make_pair(ids, engine.now());
  };
  for (Mechanisms m : {Mechanisms::Xl(), Mechanisms::LightVm()}) {
    auto [ids_a, now_a] = run_once(m);
    auto [ids_b, now_b] = run_once(m);
    EXPECT_EQ(ids_a, ids_b) << m.label();
    EXPECT_EQ(now_a.ns(), now_b.ns()) << m.label();
  }
}

TEST_F(CoreTest, CreationTimeGrowsUnderXl) {
  auto host = MakeHost(Mechanisms::Xl());
  Duration first;
  Duration last;
  for (int i = 0; i < 60; ++i) {
    auto [domid, elapsed] = CreateBootTimed(*host, DaytimeConfig(lv::StrFormat("g%d", i)));
    if (i == 0) {
      first = elapsed;
    }
    last = elapsed;
  }
  EXPECT_GT(last.ns(), first.ns());  // Monotone growth with N.
}

}  // namespace
}  // namespace lightvm
