// Tests for the always-on metrics registry: bucket boundaries, the
// histogram's documented relative-error bound against exact quantiles,
// merging, snapshot/reset semantics, and the Welford accumulator against a
// two-pass reference.
#include <algorithm>
#include <cmath>
#include <random>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/stats.h"
#include "src/metrics/export.h"
#include "src/metrics/metrics.h"

namespace {

TEST(CounterTest, IncAndReset) {
  metrics::Counter c;
  EXPECT_EQ(c.value(), 0.0);
  c.Inc();
  c.Inc(41.0);
  EXPECT_EQ(c.value(), 42.0);
  c.Reset();
  EXPECT_EQ(c.value(), 0.0);
}

TEST(GaugeTest, SetAddReset) {
  metrics::Gauge g;
  g.Set(10.0);
  g.Add(-3.0);
  EXPECT_EQ(g.value(), 7.0);
  g.Reset();
  EXPECT_EQ(g.value(), 0.0);
}

TEST(HistogramTest, EmptyHistogram) {
  metrics::Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
  EXPECT_TRUE(h.NonEmptyBuckets().empty());
}

TEST(HistogramTest, BucketBoundariesContainTheValue) {
  // For a spread of magnitudes, the single non-empty bucket must bracket
  // the recorded value and be narrow enough for the documented error bound
  // (width / lo == 1/kSubBuckets == 2 * kMaxRelativeError).
  for (double x : {1e-9, 0.004, 0.37, 1.0, 1.5, 2.0, 3.14159, 548.0, 1e6, 9.5e11}) {
    metrics::Histogram h;
    h.Record(x);
    std::vector<metrics::Histogram::Bucket> buckets = h.NonEmptyBuckets();
    ASSERT_EQ(buckets.size(), 1u) << "x=" << x;
    EXPECT_LE(buckets[0].lo, x) << "x=" << x;
    EXPECT_GE(buckets[0].hi, x) << "x=" << x;
    EXPECT_EQ(buckets[0].count, 1);
    EXPECT_LE((buckets[0].hi - buckets[0].lo) / buckets[0].lo,
              2.0 * metrics::Histogram::kMaxRelativeError + 1e-12)
        << "x=" << x;
  }
}

TEST(HistogramTest, NonPositiveValuesUnderflow) {
  metrics::Histogram h;
  h.Record(0.0);
  h.Record(-5.0);
  h.Record(1e-14);  // below 2^-40
  std::vector<metrics::Histogram::Bucket> buckets = h.NonEmptyBuckets();
  ASSERT_EQ(buckets.size(), 1u);
  EXPECT_EQ(buckets[0].lo, 0.0);
  EXPECT_EQ(buckets[0].count, 3);
  // Quantiles of underflow-only data report the exact (tracked) min/max.
  EXPECT_EQ(h.min(), -5.0);
  EXPECT_LE(h.Quantile(0.0), h.Quantile(1.0));
}

TEST(HistogramTest, HugeValuesOverflow) {
  metrics::Histogram h;
  h.Record(1e15);  // above 2^40
  std::vector<metrics::Histogram::Bucket> buckets = h.NonEmptyBuckets();
  ASSERT_EQ(buckets.size(), 1u);
  EXPECT_TRUE(std::isinf(buckets[0].hi));
  // The overflow quantile saturates at the exact tracked max.
  EXPECT_EQ(h.Quantile(0.99), 1e15);
}

TEST(HistogramTest, TracksExactMinMaxSumCount) {
  metrics::Histogram h("ms");
  for (double x : {3.0, 1.0, 4.0, 1.5, 9.0}) {
    h.Record(x);
  }
  EXPECT_EQ(h.count(), 5);
  EXPECT_EQ(h.min(), 1.0);
  EXPECT_EQ(h.max(), 9.0);
  EXPECT_DOUBLE_EQ(h.sum(), 18.5);
  EXPECT_DOUBLE_EQ(h.mean(), 3.7);
  EXPECT_EQ(h.unit(), "ms");
}

TEST(HistogramTest, RecordDurationUsesMilliseconds) {
  metrics::Histogram h("ms");
  h.RecordDuration(lv::Duration::Millis(250));
  EXPECT_DOUBLE_EQ(h.sum(), 250.0);
}

// The headline guarantee: on random data, every quantile is within
// kMaxRelativeError of the exact order statistic.
TEST(HistogramTest, QuantileRelativeErrorBound) {
  std::mt19937 rng(20170828);  // SOSP'17 camera-ready deadline-ish seed.
  std::uniform_real_distribution<double> log_u(std::log(0.01), std::log(1000.0));
  metrics::Histogram h;
  std::vector<double> exact;
  lv::Samples samples;
  const int kN = 10000;
  for (int i = 0; i < kN; ++i) {
    double x = std::exp(log_u(rng));  // log-uniform over 5 decades
    h.Record(x);
    exact.push_back(x);
    samples.Add(x);
  }
  std::sort(exact.begin(), exact.end());
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0}) {
    // Same nearest-rank rule the histogram documents.
    auto rank = static_cast<size_t>(q * (kN - 1) + 0.5);
    double want = exact[rank];
    double got = h.Quantile(q);
    EXPECT_LE(std::abs(got - want) / want, metrics::Histogram::kMaxRelativeError)
        << "q=" << q << " exact=" << want << " approx=" << got;
    // And against lv::Samples' interpolated quantile, a slightly looser
    // bound (interpolation vs nearest rank differ by at most one sample).
    double interp = samples.Quantile(q);
    EXPECT_LE(std::abs(got - interp) / interp, 0.02) << "q=" << q;
  }
  // Extremes never escape the observed range.
  EXPECT_GE(h.Quantile(0.0), exact.front());
  EXPECT_LE(h.Quantile(1.0), exact.back());
}

TEST(HistogramTest, MergeMatchesCombinedRecording) {
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> u(0.1, 100.0);
  metrics::Histogram a;
  metrics::Histogram b;
  metrics::Histogram combined;
  for (int i = 0; i < 2000; ++i) {
    double x = u(rng);
    (i % 2 == 0 ? a : b).Record(x);
    combined.Record(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  // Summation order differs between the two recording paths.
  EXPECT_NEAR(a.sum(), combined.sum(), combined.sum() * 1e-12);
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  // Bucket-wise identical, so quantiles agree exactly.
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_EQ(a.Quantile(q), combined.Quantile(q)) << "q=" << q;
  }
}

TEST(HistogramTest, ResetClearsValuesButStaysUsable) {
  metrics::Histogram h;
  h.Record(5.0);
  h.Reset();
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.Quantile(0.5), 0.0);
  h.Record(7.0);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.Quantile(0.5), 7.0);
}

TEST(RegistryTest, FindOrCreateReturnsStableHandles) {
  metrics::Registry& reg = metrics::Registry::Get();
  metrics::Counter& c1 = reg.GetCounter("test.registry.stable");
  metrics::Counter& c2 = reg.GetCounter("test.registry.stable");
  EXPECT_EQ(&c1, &c2);
  EXPECT_EQ(reg.FindCounter("test.registry.never_created"), nullptr);
  EXPECT_EQ(reg.FindCounter("test.registry.stable"), &c1);
}

TEST(RegistryTest, SnapshotAndResetSemantics) {
  metrics::Registry& reg = metrics::Registry::Get();
  metrics::Counter& c = reg.GetCounter("test.snapshot.counter");
  metrics::Gauge& g = reg.GetGauge("test.snapshot.gauge");
  metrics::Histogram& h = reg.GetHistogram("test.snapshot.hist_ms", "ms");
  c.Inc(3.0);
  g.Set(12.0);
  h.Record(10.0);
  h.Record(20.0);

  metrics::Snapshot snap = reg.TakeSnapshot();
  bool saw_counter = false;
  for (const auto& [name, value] : snap.counters) {
    if (name == "test.snapshot.counter") {
      saw_counter = true;
      EXPECT_EQ(value, 3.0);
    }
  }
  EXPECT_TRUE(saw_counter);
  bool saw_hist = false;
  for (const auto& hv : snap.histograms) {
    if (hv.name == "test.snapshot.hist_ms") {
      saw_hist = true;
      EXPECT_EQ(hv.unit, "ms");
      EXPECT_EQ(hv.count, 2);
      EXPECT_EQ(hv.min, 10.0);
      EXPECT_EQ(hv.max, 20.0);
      EXPECT_GE(hv.p50, 10.0);
      EXPECT_LE(hv.p99, 20.0);
    }
  }
  EXPECT_TRUE(saw_hist);

  // ResetAll zeroes values but keeps registrations and outstanding handles.
  int64_t metrics_before = reg.NumMetrics();
  reg.ResetAll();
  EXPECT_EQ(reg.NumMetrics(), metrics_before);
  EXPECT_EQ(c.value(), 0.0);
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_TRUE(h.empty());
  c.Inc();  // The old handle still feeds the same registered metric.
  EXPECT_EQ(reg.FindCounter("test.snapshot.counter")->value(), 1.0);
}

TEST(ExportTest, JsonSnapshotRoundTripsValues) {
  metrics::Registry& reg = metrics::Registry::Get();
  reg.GetCounter("test.export.counter").Inc(5.0);
  reg.GetHistogram("test.export.hist_ms", "ms").Record(42.0);
  std::ostringstream out;
  metrics::WriteJson(reg, out);
  std::string json = out.str();
  EXPECT_NE(json.find("\"test.export.counter\":5"), std::string::npos);
  EXPECT_NE(json.find("\"test.export.hist_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"unit\":\"ms\""), std::string::npos);
}

TEST(ExportTest, PrometheusSanitizesNamesAndEndsWithInf) {
  metrics::Registry& reg = metrics::Registry::Get();
  reg.GetCounter("test.prom.counter").Inc();
  reg.GetHistogram("test.prom.lat_ms", "ms").Record(1.0);
  std::ostringstream out;
  metrics::WritePrometheus(reg, out);
  std::string text = out.str();
  EXPECT_NE(text.find("test_prom_counter"), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
  EXPECT_EQ(text.find("test.prom"), std::string::npos);  // dots sanitized
}

// Satellite check: the Welford accumulator agrees with a two-pass reference
// on data engineered to break the naive sum-of-squares formula (large
// common offset, tiny spread).
TEST(AccumulatorTest, WelfordMatchesTwoPassReference) {
  std::mt19937 rng(12345);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  lv::Accumulator acc;
  std::vector<double> xs;
  const int kN = 10000;
  for (int i = 0; i < kN; ++i) {
    double x = 1e9 + u(rng);
    acc.Add(x);
    xs.push_back(x);
  }
  double sum = 0.0;
  for (double x : xs) {
    sum += x;
  }
  double mean = sum / kN;
  double m2 = 0.0;
  for (double x : xs) {
    m2 += (x - mean) * (x - mean);
  }
  double variance = m2 / (kN - 1);
  EXPECT_EQ(acc.count(), kN);
  EXPECT_NEAR(acc.mean(), mean, std::abs(mean) * 1e-12);
  // The naive sum/sum-of-squares form loses ALL precision here (the squared
  // sums are ~1e22, the spread ~0.08); Welford and the two-pass reference
  // agree to ~7 significant digits.
  EXPECT_NEAR(acc.variance(), variance, variance * 1e-6);
  EXPECT_GT(acc.variance(), 0.0);
}

TEST(AccumulatorTest, SmallExactCases) {
  lv::Accumulator acc;
  EXPECT_EQ(acc.count(), 0);
  EXPECT_EQ(acc.variance(), 0.0);
  acc.Add(2.0);
  EXPECT_EQ(acc.variance(), 0.0);  // n=1: sample variance undefined -> 0
  acc.Add(4.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 3.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 2.0);  // ((2-3)^2 + (4-3)^2) / (2-1)
  EXPECT_EQ(acc.min(), 2.0);
  EXPECT_EQ(acc.max(), 4.0);
}

}  // namespace
