// Tests for the Tinyx build system: dependency resolution via both channels,
// blacklisting, overlay assembly, kernel trimming loop and size outcomes.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/tinyx/builder.h"

namespace tinyx {
namespace {

using lv::Bytes;

bool Contains(const std::vector<std::string>& v, const std::string& s) {
  return std::find(v.begin(), v.end(), s) != v.end();
}

class TinyxTest : public ::testing::Test {
 public:
  TinyxTest() : builder_(PackageDb::DebianBase()) {}
  TinyxBuilder builder_;
};

TEST_F(TinyxTest, ClosureFollowsPackageDependencies) {
  auto closure = builder_.ResolveClosure("nginx");
  ASSERT_TRUE(closure.ok());
  EXPECT_TRUE(Contains(*closure, "nginx"));
  EXPECT_TRUE(Contains(*closure, "libc6"));
  EXPECT_TRUE(Contains(*closure, "zlib1g"));
  EXPECT_TRUE(Contains(*closure, "libpcre3"));
  EXPECT_TRUE(Contains(*closure, "libssl"));
}

TEST_F(TinyxTest, ClosureFollowsObjdumpLibs) {
  // micropython declares only libc6 but objdump shows libm.so.6 (provided
  // by libc6 here) — the lib channel must not miss providers.
  auto closure = builder_.ResolveClosure("micropython");
  ASSERT_TRUE(closure.ok());
  EXPECT_TRUE(Contains(*closure, "libc6"));
}

TEST_F(TinyxTest, ClosureUnknownPackageFails) {
  EXPECT_EQ(builder_.ResolveClosure("no-such-app").code(), lv::ErrorCode::kNotFound);
}

TEST_F(TinyxTest, BuildExcludesInstallationMachinery) {
  BuildConfig config;
  config.app = "nginx";
  auto image = builder_.Build(config);
  ASSERT_TRUE(image.ok());
  EXPECT_FALSE(Contains(image->packages, "dpkg"));
  EXPECT_FALSE(Contains(image->packages, "apt"));
  EXPECT_FALSE(Contains(image->packages, "perl-base"));
  EXPECT_TRUE(Contains(image->packages, "nginx"));
  EXPECT_TRUE(Contains(image->packages, "busybox"));
}

TEST_F(TinyxTest, WhitelistForcesPackages) {
  BuildConfig config;
  config.app = "micropython";
  config.whitelist = {"tls-proxy"};
  auto image = builder_.Build(config);
  ASSERT_TRUE(image.ok());
  EXPECT_TRUE(Contains(image->packages, "tls-proxy"));
  EXPECT_TRUE(Contains(image->packages, "libaxtls"));
}

TEST_F(TinyxTest, OverlayStripsCaches) {
  BuildConfig config;
  config.app = "nginx";
  auto image = builder_.Build(config);
  ASSERT_TRUE(image.ok());
  // One of the overlay steps must be a negative (cache removal) delta.
  bool has_negative = false;
  for (const OverlayStep& step : image->overlay_steps) {
    if (step.delta < Bytes::Count(0)) {
      has_negative = true;
    }
  }
  EXPECT_TRUE(has_negative);
  ASSERT_GE(image->overlay_steps.size(), 5u);
}

TEST_F(TinyxTest, KernelTrimmingDisablesUnneededOptions) {
  BuildConfig config;
  config.app = "micropython";
  config.kernel_options_to_test = {"IPV6", "NETFILTER", "INET", "FUTEX", "CRYPTO_FULL"};
  auto image = builder_.Build(config);
  ASSERT_TRUE(image.ok());
  // micropython needs FUTEX (ground truth) but not IPV6/NETFILTER/CRYPTO.
  EXPECT_TRUE(Contains(image->options_disabled_by_test, "IPV6"));
  EXPECT_TRUE(Contains(image->options_disabled_by_test, "NETFILTER"));
  EXPECT_TRUE(Contains(image->options_disabled_by_test, "CRYPTO_FULL"));
  EXPECT_FALSE(Contains(image->options_disabled_by_test, "FUTEX"));
  EXPECT_TRUE(image->kernel_options.contains("FUTEX"));
  EXPECT_FALSE(image->kernel_options.contains("IPV6"));
  EXPECT_EQ(image->boot_tests_run, 5);
}

TEST_F(TinyxTest, TrimmingShrinksKernel) {
  BuildConfig base;
  base.app = "nginx";
  auto untrimmed = builder_.Build(base);
  ASSERT_TRUE(untrimmed.ok());

  BuildConfig trimmed = base;
  trimmed.kernel_options_to_test = {"IPV6", "NETFILTER", "TMPFS", "SYSFS"};
  auto result = builder_.Build(trimmed);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->kernel_size, untrimmed->kernel_size);
}

TEST_F(TinyxTest, PlatformSelectsFrontends) {
  BuildConfig xen;
  xen.app = "nginx";
  xen.platform = Platform::kXen;
  auto xen_image = builder_.Build(xen);
  ASSERT_TRUE(xen_image.ok());
  EXPECT_TRUE(xen_image->kernel_options.contains("XEN_NETDEV_FRONTEND"));
  EXPECT_FALSE(xen_image->kernel_options.contains("VIRTIO_NET"));

  BuildConfig kvm = xen;
  kvm.platform = Platform::kKvm;
  auto kvm_image = builder_.Build(kvm);
  ASSERT_TRUE(kvm_image.ok());
  EXPECT_TRUE(kvm_image->kernel_options.contains("VIRTIO_NET"));
  EXPECT_FALSE(kvm_image->kernel_options.contains("XEN_PV"));
}

TEST_F(TinyxTest, ModulesAndBaremetalDriversDisabledByDefault) {
  BuildConfig config;
  config.app = "nginx";
  auto image = builder_.Build(config);
  ASSERT_TRUE(image.ok());
  EXPECT_FALSE(image->kernel_options.contains("MODULES"));
  EXPECT_FALSE(image->kernel_options.contains("USB"));
  EXPECT_FALSE(image->kernel_options.contains("SOUND"));
  EXPECT_FALSE(image->kernel_options.contains("GPU_DRIVERS"));
}

TEST_F(TinyxTest, ImageSizesLandInPaperRange) {
  BuildConfig config;
  config.app = "nginx";
  config.kernel_options_to_test = {"IPV6", "NETFILTER", "CRYPTO_FULL"};
  auto image = builder_.Build(config);
  ASSERT_TRUE(image.ok());
  // "images that are a few tens of MBs in size" / ~10 MB for the paper's
  // Tinyx; memory ~30 MB.
  EXPECT_GT(image->image_size.mib(), 3.0);
  EXPECT_LT(image->image_size.mib(), 40.0);
  EXPECT_GT(image->memory_estimate.mib(), 15.0);
  EXPECT_LT(image->memory_estimate.mib(), 45.0);
  // Image is dominated by the rootfs+kernel, far below Debian's 1.1 GB.
  EXPECT_LT(image->image_size.mib(), 100.0);
}

TEST_F(TinyxTest, CustomBootTestIsHonored) {
  BuildConfig config;
  config.app = "nginx";
  config.kernel_options_to_test = {"IPV6", "NETFILTER"};
  int tests_run = 0;
  config.boot_test = [&tests_run](const std::set<std::string>&, const std::string&) {
    ++tests_run;
    return false;  // Everything "fails": nothing may be disabled.
  };
  auto image = builder_.Build(config);
  // The final config check also uses the custom test, which fails here.
  EXPECT_FALSE(image.ok());
  EXPECT_GE(tests_run, 2);
}

TEST_F(TinyxTest, ToGuestImageCarriesSizes) {
  BuildConfig config;
  config.app = "tls-proxy";
  auto image = builder_.Build(config);
  ASSERT_TRUE(image.ok());
  guests::GuestImage gi = image->ToGuestImage();
  EXPECT_EQ(gi.kind, guests::GuestKind::kTinyx);
  EXPECT_EQ(gi.image_size, image->image_size);
  EXPECT_EQ(gi.memory, image->memory_estimate);
  EXPECT_GT(gi.tls_handshake_cpu.ms(), 0.0);
}

TEST_F(TinyxTest, DeterministicBuilds) {
  BuildConfig config;
  config.app = "nginx";
  config.kernel_options_to_test = {"IPV6", "NETFILTER"};
  auto a = builder_.Build(config);
  auto b = builder_.Build(config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->packages, b->packages);
  EXPECT_EQ(a->image_size, b->image_size);
  EXPECT_EQ(a->kernel_options, b->kernel_options);
}

}  // namespace
}  // namespace tinyx
