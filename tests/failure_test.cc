// Failure-injection tests: resource exhaustion mid-create, bad inputs and
// misuse of the lifecycle APIs must roll back cleanly — no leaked domains,
// pages, grants or event channels.
#include <gtest/gtest.h>

#include "src/base/strings.h"
#include "src/core/host.h"
#include "src/core/verify.h"
#include "src/faults/injector.h"
#include "src/sim/run.h"

namespace lightvm {
namespace {

using lv::Bytes;
using lv::Duration;

toolstack::VmConfig Daytime(const std::string& name) {
  toolstack::VmConfig config;
  config.name = name;
  config.image = guests::DaytimeUnikernel();
  return config;
}

class FailureTest : public ::testing::TestWithParam<Mechanisms> {
 public:
  template <typename T>
  T Run(sim::Co<T> co) {
    return sim::RunToCompletion(engine_, std::move(co));
  }
  sim::Engine engine_;
};

TEST_P(FailureTest, OutOfMemoryCreateRollsBackCleanly) {
  HostSpec spec = HostSpec::Xeon4Core();
  spec.memory = Bytes::MiB(64);  // Fits ~17 daytime VMs.
  spec.dom0_memory = Bytes::MiB(4);
  Host host(&engine_, spec, GetParam());

  int created = 0;
  lv::Status last_error = lv::Status::Ok();
  // Page sharing fits ~4x more VMs before the wall; 128 covers both cases.
  for (int i = 0; i < 128; ++i) {
    auto domid = Run(host.CreateVm(Daytime(lv::StrFormat("oom%d", i))));
    if (!domid.ok()) {
      last_error = lv::Err(domid.error().code, domid.error().message);
      break;
    }
    ++created;
  }
  EXPECT_GT(created, 5);
  EXPECT_LT(created, 128);
  EXPECT_EQ(last_error.code(), lv::ErrorCode::kOutOfMemory);
  // The failed create left no half-built domain behind: every tracked VM is
  // live, and the domain count matches (no zombies accumulating memory).
  EXPECT_EQ(host.num_vms(), created);
  EXPECT_EQ(host.hv().NumDomainsInState(hv::DomainState::kDead), 0);

  // Destroying one VM makes room for exactly one more.
  guests::Guest* any = nullptr;
  for (hv::DomainId id = 1; id < 100 && any == nullptr; ++id) {
    any = host.guest(id);
    if (any != nullptr) {
      ASSERT_TRUE(Run(host.DestroyVm(id)).ok());
    }
  }
  auto again = Run(host.CreateVm(Daytime("after-oom")));
  EXPECT_TRUE(again.ok());
}

TEST_P(FailureTest, LifecycleMisuseReturnsErrorsNotCrashes) {
  Host host(&engine_, HostSpec::Xeon4Core(), GetParam());
  // Operations on unknown VMs.
  EXPECT_EQ(Run(host.DestroyVm(999)).code(), lv::ErrorCode::kNotFound);
  EXPECT_EQ(Run(host.SaveVm(999)).code(), lv::ErrorCode::kNotFound);

  auto domid = Run(host.CreateAndBoot(Daytime("ok")));
  ASSERT_TRUE(domid.ok());
  // Double destroy.
  ASSERT_TRUE(Run(host.DestroyVm(*domid)).ok());
  EXPECT_EQ(Run(host.DestroyVm(*domid)).code(), lv::ErrorCode::kNotFound);
  // Save after destroy.
  EXPECT_EQ(Run(host.SaveVm(*domid)).code(), lv::ErrorCode::kNotFound);
}

TEST_P(FailureTest, MigrateUnknownVmFails) {
  Host src(&engine_, HostSpec::Xeon4Core(), GetParam());
  Host dst(&engine_, HostSpec::Xeon4Core(), GetParam());
  xnet::Link link(&engine_, 10.0, Duration::MillisF(0.2));
  EXPECT_EQ(Run(src.MigrateVm(12345, &dst, &link)).code(), lv::ErrorCode::kNotFound);
  EXPECT_EQ(dst.num_vms(), 0);
}

TEST_P(FailureTest, ResourcesReturnToBaselineAfterChurn) {
  Host host(&engine_, HostSpec::Xeon4Core(), GetParam());
  lv::Bytes baseline = host.MemoryUsed();
  int64_t channels = host.hv().event_channels().open_channels();
  int64_t grants = host.hv().grant_table().active_grants();
  for (int round = 0; round < 5; ++round) {
    std::vector<hv::DomainId> ids;
    for (int i = 0; i < 8; ++i) {
      auto domid = Run(host.CreateAndBoot(Daytime(lv::StrFormat("c%d-%d", round, i))));
      ASSERT_TRUE(domid.ok());
      ids.push_back(*domid);
    }
    for (hv::DomainId id : ids) {
      ASSERT_TRUE(Run(host.DestroyVm(id)).ok());
    }
  }
  EXPECT_EQ(host.MemoryUsed(), baseline);
  EXPECT_EQ(host.hv().event_channels().open_channels(), channels);
  EXPECT_EQ(host.hv().grant_table().active_grants(), grants);
  EXPECT_EQ(host.num_vms(), 0);
  // The reusable invariant checker must agree with the manual comparison.
  lv::Status verified = VerifyNoLeakedResources(host);
  EXPECT_TRUE(verified.ok()) << verified.error().message;
}

// Property sweep: seeded random fault plans of transient faults (injected
// create failures, hotplug stalls, xenstored restarts) against a churn
// workload. Whatever interleaving the plan produces, every failed create
// must roll back completely — the host returns to its resource baseline.
TEST_P(FailureTest, RandomTransientFaultPlansRollBackCleanly) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    sim::Engine engine(seed);
    Host host(&engine, HostSpec::Xeon4Core(), GetParam());

    faults::FaultPlan plan =
        faults::FaultPlan::Random(seed, /*nodes=*/1, /*num_events=*/6,
                                  Duration::Millis(50));
    faults::FaultTargets targets;
    // Crash / reboot / partition sinks stay unbound: a single host has no
    // cluster to heal it, so this sweep drives only the transient kinds.
    targets.restart_xenstore = [&](int, Duration downtime) {
      if (host.store() != nullptr) {
        host.store()->InjectRestart(downtime);
      }
    };
    targets.stall_hotplug = [&](int, Duration stall, int count) {
      host.fault_hooks().hotplug_stall = stall;
      host.fault_hooks().stall_next_hotplugs += count;
    };
    targets.fail_creates = [&](int, int count) {
      host.fault_hooks().fail_next_creates += count;
    };
    faults::FaultInjector injector(&engine, std::move(plan), std::move(targets));
    injector.Arm();

    int created = 0;
    int failed = 0;
    std::vector<hv::DomainId> live;
    for (int op = 0; op < 24; ++op) {
      auto domid = sim::RunToCompletion(
          engine, host.CreateAndBoot(Daytime(lv::StrFormat("s%llu-%d",
                                                           (unsigned long long)seed, op))));
      if (domid.ok()) {
        ++created;
        live.push_back(*domid);
      } else {
        ++failed;
        EXPECT_EQ(domid.error().code, lv::ErrorCode::kUnavailable)
            << domid.error().message;
      }
      if (live.size() >= 6) {
        ASSERT_TRUE(sim::RunToCompletion(engine, host.DestroyVm(live.front())).ok());
        live.erase(live.begin());
      }
    }
    for (hv::DomainId id : live) {
      ASSERT_TRUE(sim::RunToCompletion(engine, host.DestroyVm(id)).ok());
    }
    EXPECT_GT(created, 0) << "seed " << seed;
    lv::Status verified = VerifyNoLeakedResources(host);
    EXPECT_TRUE(verified.ok())
        << "seed " << seed << ": " << verified.error().message
        << " (plan:\n" << injector.plan().ToString() << ")";
  }
}

// A node crash destroys every VM through the settle pass; after Reboot the
// host is back at its resource baseline and can create again.
TEST_P(FailureTest, CrashSettleRebootRestoresBaseline) {
  Host host(&engine_, HostSpec::Xeon4Core(), GetParam());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(Run(host.CreateAndBoot(Daytime(lv::StrFormat("pre%d", i)))).ok());
  }
  EXPECT_EQ(host.num_vms(), 4);

  host.Crash();
  ASSERT_TRUE(sim::RunUntilCondition(engine_, [&] { return host.crash_settled(); },
                                     Duration::Seconds(60)));
  EXPECT_EQ(host.num_vms(), 0);
  // New work is refused while the node is down.
  EXPECT_EQ(Run(host.CreateVm(Daytime("while-down"))).error().code,
            lv::ErrorCode::kUnavailable);
  lv::Status verified = VerifyNoLeakedResources(host);
  EXPECT_TRUE(verified.ok()) << verified.error().message;

  host.Reboot();
  EXPECT_FALSE(host.crashed());
  auto domid = Run(host.CreateAndBoot(Daytime("post-reboot")));
  EXPECT_TRUE(domid.ok());
}

INSTANTIATE_TEST_SUITE_P(AllMechanisms, FailureTest,
                         ::testing::Values(Mechanisms::Xl(), Mechanisms::ChaosXs(),
                                           Mechanisms::ChaosNoxs(), Mechanisms::LightVm(),
                                           Mechanisms::LightVmShared()),
                         [](const ::testing::TestParamInfo<Mechanisms>& info) {
                           std::string name = info.param.label();
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace lightvm
