// Scenario layer: strict spec parsing, the determinism contract of the
// runner, and paper fidelity of the fig04-equivalent spec against a direct
// Host loop with identical measurement semantics.
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/base/json.h"
#include "src/core/host.h"
#include "src/scenario/runner.h"
#include "src/scenario/spec.h"
#include "src/sim/engine.h"
#include "src/sim/run.h"
#include "src/toolstack/config.h"
#include "src/xenstore/policy.h"
#include "src/xenstore/store.h"

namespace {

// --- JSON reader ------------------------------------------------------------

TEST(Json, ParsesScalarsArraysObjects) {
  auto v = lv::json::Parse(R"({
    // comments are allowed
    "s": "hi", "i": 42, "f": -2.5e1, "b": true, "n": null,
    "a": [1, 2, 3],
    "o": { "nested": "yes" },
  })");
  ASSERT_TRUE(v.ok()) << v.error().ToString();
  EXPECT_EQ(v->Get("s")->AsString(), "hi");
  EXPECT_EQ(v->Get("i")->AsInt(), 42);
  EXPECT_DOUBLE_EQ(v->Get("f")->AsDouble(), -25.0);
  EXPECT_TRUE(v->Get("b")->AsBool());
  EXPECT_TRUE(v->Get("n")->is_null());
  EXPECT_EQ(v->Get("a")->AsArray().size(), 3u);
  EXPECT_EQ(v->Get("o")->Get("nested")->AsString(), "yes");
  EXPECT_EQ(v->Get("missing"), nullptr);
}

TEST(Json, RejectsDuplicateKeys) {
  auto v = lv::json::Parse(R"({"a": 1, "a": 2})");
  ASSERT_FALSE(v.ok());
  EXPECT_NE(v.error().ToString().find("duplicate key"), std::string::npos);
}

TEST(Json, RejectsTrailingGarbage) {
  EXPECT_FALSE(lv::json::Parse(R"({"a": 1} extra)").ok());
  EXPECT_FALSE(lv::json::Parse(R"([1, 2)").ok());
  EXPECT_FALSE(lv::json::Parse("").ok());
}

TEST(Json, ErrorsCarryLineAndColumn) {
  auto v = lv::json::Parse("{\n  \"a\": @\n}");
  ASSERT_FALSE(v.ok());
  EXPECT_NE(v.error().ToString().find("line 2 column 8"), std::string::npos)
      << v.error().ToString();
}

// --- Spec parsing -----------------------------------------------------------

TEST(Spec, RoundTripAllFields) {
  auto spec = scenario::ParseSpec(R"({
    "name": "t", "title": "a title", "seed": 7,
    "mechanisms": "lightvm",
    "topology": {
      "nodes": 4,
      "host": { "preset": "amd64", "cores": 48, "memory_gib": 256 },
      "link_gbps": 25, "link_rtt_us": 100
    },
    "shell_pool": { "image": "daytime", "target": 12, "wants_net": false },
    "workload": {
      "kind": "fleet-deploy", "image": "daytime", "vms": 100,
      "concurrency": 4, "wait_boot": false,
      "policies": ["first-fit", "least-loaded"]
    },
    "output": { "sample_points": 9 }
  })");
  ASSERT_TRUE(spec.ok()) << spec.error().ToString();
  EXPECT_EQ(spec->name, "t");
  EXPECT_EQ(spec->title, "a title");
  EXPECT_EQ(spec->seed, 7u);
  EXPECT_EQ(spec->topology.nodes, 4);
  EXPECT_EQ(spec->topology.host.preset, "amd64");
  EXPECT_EQ(spec->topology.host.cores, 48);
  EXPECT_DOUBLE_EQ(spec->topology.host.memory_gib, 256.0);
  EXPECT_DOUBLE_EQ(spec->topology.link_gbps, 25.0);
  ASSERT_TRUE(spec->shell_pool.has_value());
  EXPECT_EQ(spec->shell_pool->image, "daytime");
  EXPECT_EQ(spec->shell_pool->target, 12);
  EXPECT_EQ(spec->shell_pool->wants_net, std::optional<bool>(false));
  EXPECT_EQ(spec->workload.kind, scenario::WorkloadKind::kFleetDeploy);
  EXPECT_EQ(spec->workload.vms, 100);
  EXPECT_EQ(spec->workload.concurrency, 4);
  EXPECT_FALSE(spec->workload.wait_boot);
  EXPECT_EQ(spec->workload.policies,
            (std::vector<std::string>{"first-fit", "least-loaded"}));
  EXPECT_EQ(spec->sample_points, 9);
}

TEST(Spec, DefaultsApply) {
  auto spec = scenario::ParseSpec(R"({
    "name": "d",
    "workload": {
      "kind": "sequential-boots",
      "guests": [ { "image": "daytime", "count": 3 } ]
    }
  })");
  ASSERT_TRUE(spec.ok()) << spec.error().ToString();
  EXPECT_EQ(spec->seed, 1u);
  EXPECT_EQ(spec->mechanisms, "lightvm");
  EXPECT_EQ(spec->topology.nodes, 1);
  EXPECT_EQ(spec->topology.host.preset, "xeon4");
  EXPECT_FALSE(spec->shell_pool.has_value());
  EXPECT_EQ(spec->sample_points, 25);
  ASSERT_EQ(spec->workload.guests.size(), 1u);
  // series defaults to the image name, name_prefix to "<series>-".
  EXPECT_EQ(spec->workload.guests[0].series, "daytime");
  EXPECT_EQ(spec->workload.guests[0].name_prefix, "daytime-");
}

TEST(Spec, UnknownTopLevelKeyRejected) {
  auto spec = scenario::ParseSpec(R"({
    "name": "t", "wokload": {},
    "workload": { "kind": "sequential-boots",
                  "guests": [ { "image": "daytime", "count": 1 } ] }
  })");
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.error().ToString().find("unknown key 'wokload'"),
            std::string::npos)
      << spec.error().ToString();
}

TEST(Spec, UnknownNestedKeyRejected) {
  auto spec = scenario::ParseSpec(R"({
    "name": "t",
    "workload": { "kind": "churn-storm", "operations": 10, "max_live": 5,
                  "opps": 3 }
  })");
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.error().ToString().find("key 'opps'"), std::string::npos)
      << spec.error().ToString();
}

TEST(Spec, ShellPoolRequiresSplitToolstack) {
  auto spec = scenario::ParseSpec(R"({
    "name": "t", "mechanisms": "xl",
    "shell_pool": { "image": "daytime" },
    "workload": { "kind": "sequential-boots",
                  "guests": [ { "image": "daytime", "count": 1 } ] }
  })");
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.error().ToString().find("shell_pool"), std::string::npos);
}

TEST(Spec, MultiNodeOnlyForFleetDeploy) {
  auto spec = scenario::ParseSpec(R"({
    "name": "t", "topology": { "nodes": 3 },
    "workload": { "kind": "sequential-boots",
                  "guests": [ { "image": "daytime", "count": 1 } ] }
  })");
  EXPECT_FALSE(spec.ok());

  auto fleet = scenario::ParseSpec(R"({
    "name": "t",
    "workload": { "kind": "fleet-deploy", "vms": 10,
                  "policies": ["first-fit"] }
  })");
  EXPECT_FALSE(fleet.ok());  // fleet-deploy on a single node
}

TEST(Spec, ShardsParsedAndValidated) {
  auto spec = scenario::ParseSpec(R"({
    "name": "t", "topology": { "nodes": 4, "shards": 4 },
    "workload": { "kind": "fleet-deploy", "vms": 10,
                  "policies": ["least-loaded"] }
  })");
  ASSERT_TRUE(spec.ok()) << spec.error().ToString();
  EXPECT_EQ(spec->topology.shards, 4);

  // Defaults to the classic single-engine path.
  auto plain = scenario::ParseSpec(R"({
    "name": "t", "topology": { "nodes": 2 },
    "workload": { "kind": "fleet-deploy", "vms": 10,
                  "policies": ["least-loaded"] }
  })");
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->topology.shards, 0);

  // Sharded execution needs a cluster: one node has no cross-domain
  // parallelism to exploit (and no fleet-deploy workload to run).
  EXPECT_FALSE(scenario::ParseSpec(R"({
    "name": "t", "topology": { "nodes": 1, "shards": 2 },
    "workload": { "kind": "sequential-boots",
                  "guests": [ { "image": "daytime", "count": 1 } ] }
  })").ok());

  // At most one shard per time domain (nodes + control).
  EXPECT_FALSE(scenario::ParseSpec(R"({
    "name": "t", "topology": { "nodes": 2, "shards": 4 },
    "workload": { "kind": "fleet-deploy", "vms": 10,
                  "policies": ["least-loaded"] }
  })").ok());

  EXPECT_FALSE(scenario::ParseSpec(R"({
    "name": "t", "topology": { "nodes": 2, "shards": -1 },
    "workload": { "kind": "fleet-deploy", "vms": 10,
                  "policies": ["least-loaded"] }
  })").ok());
}

// The sharded fleet path through the runner: same spec + same seed must be
// byte-identical run-to-run (the runner's internal single-shard reference
// pass additionally pins it to the sequential schedule on every run).
TEST(Runner, ShardedFleetByteIdentical) {
  auto spec = scenario::ParseSpec(R"({
    "name": "t", "mechanisms": "lightvm",
    "topology": { "nodes": 2, "host": { "preset": "xeon4" }, "shards": 2 },
    "workload": { "kind": "fleet-deploy", "image": "daytime", "vms": 24,
                  "concurrency": 4, "policies": ["least-loaded"] }
  })");
  ASSERT_TRUE(spec.ok()) << spec.error().ToString();

  std::string tables[2];
  for (int i = 0; i < 2; ++i) {
    std::ostringstream out;
    auto result = scenario::Run(*spec, {}, out);
    ASSERT_TRUE(result.ok()) << result.error().ToString();
    tables[i] = out.str();
  }
  EXPECT_EQ(tables[0], tables[1]);
  EXPECT_NE(tables[0].find("reference: single-shard placement hash match ok"),
            std::string::npos);
}

TEST(Spec, UnknownNamesRejected) {
  EXPECT_FALSE(scenario::ParseSpec(R"({
    "name": "t", "mechanisms": "qemu",
    "workload": { "kind": "sequential-boots",
                  "guests": [ { "image": "daytime", "count": 1 } ] }
  })").ok());
  EXPECT_FALSE(scenario::ParseSpec(R"({
    "name": "t",
    "workload": { "kind": "sequential-boots",
                  "guests": [ { "image": "no-such-image", "count": 1 } ] }
  })").ok());
  EXPECT_FALSE(scenario::ParseSpec(R"({
    "name": "t", "topology": { "nodes": 2 },
    "workload": { "kind": "fleet-deploy", "vms": 10,
                  "policies": ["best-effort"] }
  })").ok());
}

// --- Runner determinism -----------------------------------------------------

// The churn storm exercises every nondeterminism hazard at once: concurrent
// jobs, RNG-driven decisions, quantile summaries. Same spec + same seed must
// produce byte-identical tables and identical point streams.
TEST(Runner, SameSeedByteIdentical) {
  auto spec = scenario::ParseSpec(R"({
    "name": "t", "mechanisms": "lightvm",
    "host": { "preset": "xeon14" },
    "shell_pool": { "image": "daytime", "target": 8 },
    "workload": { "kind": "churn-storm", "image": "daytime",
                  "operations": 60, "concurrency": 4, "max_live": 12,
                  "destroy_fraction": 0.4 }
  })");
  ASSERT_TRUE(spec.ok()) << spec.error().ToString();

  auto run_once = [&](std::string* table,
                      std::vector<std::string>* points) {
    std::ostringstream out;
    auto result = scenario::Run(
        *spec, {}, out,
        [&](const std::string& series,
            const std::vector<std::pair<std::string, double>>& row) {
          std::ostringstream p;
          p << series;
          for (const auto& [col, val] : row) {
            p << " " << col << "=" << val;
          }
          points->push_back(p.str());
        });
    ASSERT_TRUE(result.ok()) << result.error().ToString();
    *table = out.str();
  };

  std::string table1, table2;
  std::vector<std::string> points1, points2;
  run_once(&table1, &points1);
  run_once(&table2, &points2);
  EXPECT_EQ(table1, table2);
  EXPECT_EQ(points1, points2);
  EXPECT_FALSE(points1.empty());
}

TEST(Runner, DifferentSeedDiverges) {
  const char* kTemplate = R"({
    "name": "t", "seed": %d, "mechanisms": "lightvm",
    "host": { "preset": "xeon14" },
    "shell_pool": { "image": "daytime", "target": 8 },
    "workload": { "kind": "churn-storm", "image": "daytime",
                  "operations": 60, "concurrency": 4, "max_live": 12,
                  "destroy_fraction": 0.4 }
  })";
  char buf[512];
  std::string tables[2];
  for (int seed : {1, 2}) {
    snprintf(buf, sizeof(buf), kTemplate, seed);
    auto spec = scenario::ParseSpec(buf);
    ASSERT_TRUE(spec.ok()) << spec.error().ToString();
    std::ostringstream out;
    auto result = scenario::Run(*spec, {}, out);
    ASSERT_TRUE(result.ok()) << result.error().ToString();
    tables[seed - 1] = out.str();
  }
  EXPECT_NE(tables[0], tables[1]);
}

// --- Store policy plumbing and the byte-identity guard ----------------------
// Figures 4/9 depend on the faithful O(n) legacy store; the indexed fast
// path must stay strictly opt-in. These tests pin the default at every layer
// and prove an explicit "legacy" field changes nothing, byte for byte.

TEST(Spec, XenstorePolicyParsedAndValidated) {
  auto spec = scenario::ParseSpec(R"({
    "name": "p", "mechanisms": "chaos-xs", "xenstore_policy": "indexed",
    "workload": { "kind": "sequential-boots",
                  "guests": [ { "image": "daytime", "count": 1 } ] }
  })");
  ASSERT_TRUE(spec.ok()) << spec.error().ToString();
  EXPECT_EQ(spec->xenstore_policy, xs::StorePolicy::kIndexed);

  auto unknown = scenario::ParseSpec(R"({
    "name": "p", "mechanisms": "chaos-xs", "xenstore_policy": "btree",
    "workload": { "kind": "sequential-boots",
                  "guests": [ { "image": "daytime", "count": 1 } ] }
  })");
  ASSERT_FALSE(unknown.ok());
  EXPECT_NE(unknown.error().ToString().find("unknown policy 'btree'"),
            std::string::npos)
      << unknown.error().ToString();

  // A storeless preset has no xenstored to index.
  auto storeless = scenario::ParseSpec(R"({
    "name": "p", "mechanisms": "lightvm", "xenstore_policy": "indexed",
    "workload": { "kind": "sequential-boots",
                  "guests": [ { "image": "daytime", "count": 1 } ] }
  })");
  ASSERT_FALSE(storeless.ok());
  EXPECT_NE(storeless.error().ToString().find("no xenstored"), std::string::npos)
      << storeless.error().ToString();
}

TEST(StorePolicyGuard, EveryDefaultIsLegacy) {
  EXPECT_EQ(xs::CurrentStorePolicy(), xs::StorePolicy::kLegacy);
  EXPECT_EQ(lightvm::Mechanisms{}.xs_policy, xs::StorePolicy::kLegacy);
  EXPECT_EQ(lightvm::Mechanisms::Xl().xs_policy, xs::StorePolicy::kLegacy);
  EXPECT_EQ(lightvm::Mechanisms::ChaosXs().xs_policy, xs::StorePolicy::kLegacy);
  EXPECT_EQ(lightvm::Mechanisms::ChaosXsSplit().xs_policy, xs::StorePolicy::kLegacy);
  EXPECT_EQ(lightvm::Mechanisms::LightVm().xs_policy, xs::StorePolicy::kLegacy);
  EXPECT_EQ(xs::Store().policy(), xs::StorePolicy::kLegacy);
  scenario::Spec spec;
  EXPECT_EQ(spec.xenstore_policy, xs::StorePolicy::kLegacy);
  // The scope restores the previous policy on exit.
  {
    xs::StorePolicyScope scope(xs::StorePolicy::kIndexed);
    EXPECT_EQ(xs::CurrentStorePolicy(), xs::StorePolicy::kIndexed);
    EXPECT_EQ(xs::Store().policy(), xs::StorePolicy::kIndexed);
  }
  EXPECT_EQ(xs::CurrentStorePolicy(), xs::StorePolicy::kLegacy);
}

TEST(Runner, ExplicitLegacyPolicyIsByteIdenticalAndIndexedIsFaster) {
  const char* kTemplate = R"({
    "name": "p", "mechanisms": "chaos-xs",%s
    "host": { "preset": "xeon4" },
    "workload": { "kind": "sequential-boots",
                  "guests": [ { "series": "uni", "image": "daytime",
                                "count": 40 } ] }
  })";

  auto run_once = [&](const char* policy_field, std::string* table,
                      double* last_create_ms) {
    char buf[512];
    snprintf(buf, sizeof(buf), kTemplate, policy_field);
    auto spec = scenario::ParseSpec(buf);
    ASSERT_TRUE(spec.ok()) << spec.error().ToString();
    std::ostringstream out;
    auto result = scenario::Run(
        *spec, {}, out,
        [&](const std::string&,
            const std::vector<std::pair<std::string, double>>& row) {
          std::map<std::string, double> cols(row.begin(), row.end());
          if (static_cast<int>(cols.at("n")) == 40) {
            *last_create_ms = cols.at("create_ms");
          }
        });
    ASSERT_TRUE(result.ok()) << result.error().ToString();
    *table = out.str();
  };

  std::string implicit, legacy, indexed;
  double implicit_ms = 0.0, legacy_ms = 0.0, indexed_ms = 0.0;
  run_once("", &implicit, &implicit_ms);
  run_once(" \"xenstore_policy\": \"legacy\",", &legacy, &legacy_ms);
  run_once(" \"xenstore_policy\": \"indexed\",", &indexed, &indexed_ms);

  // Spelling out the default changes nothing, byte for byte.
  EXPECT_EQ(implicit, legacy);
  EXPECT_EQ(implicit_ms, legacy_ms);
  // The indexed run annotates its header and creates VMs faster.
  EXPECT_NE(indexed, implicit);
  EXPECT_NE(indexed.find("xenstore_policy=indexed"), std::string::npos);
  EXPECT_EQ(implicit.find("xenstore_policy"), std::string::npos);
  EXPECT_LT(indexed_ms, implicit_ms);
}

// --- Paper fidelity ---------------------------------------------------------

// A scaled-down fig04 spec must agree with a direct Host loop that uses the
// dedicated binaries' measurement semantics (create spans CreateVm, boot
// spans unpause -> boot signal) and naming ("<series>-<i>"). Acceptance for
// the full-scale spec is the committed scenarios/fig04_instantiation.json,
// cross-checked in CI via the committed baselines; this test keeps the
// equivalence enforced at unit-test cost.
TEST(Runner, Fig04SemanticsMatchDirectHostLoop) {
  constexpr int kCount = 40;

  auto spec = scenario::ParseSpec(R"({
    "name": "fig04-mini", "mechanisms": "xl",
    "host": { "preset": "xeon4" },
    "workload": { "kind": "sequential-boots",
                  "guests": [ { "series": "unikernel", "image": "daytime",
                                "count": 40 } ] }
  })");
  ASSERT_TRUE(spec.ok()) << spec.error().ToString();

  std::map<int, std::pair<double, double>> scenario_ms;  // n -> (create, boot)
  std::ostringstream out;
  auto result = scenario::Run(
      *spec, {}, out,
      [&](const std::string& series,
          const std::vector<std::pair<std::string, double>>& row) {
        ASSERT_EQ(series, "unikernel");
        std::map<std::string, double> cols(row.begin(), row.end());
        scenario_ms[static_cast<int>(cols.at("n"))] = {cols.at("create_ms"),
                                                       cols.at("boot_ms")};
      });
  ASSERT_TRUE(result.ok()) << result.error().ToString();
  ASSERT_EQ(scenario_ms.size(), static_cast<size_t>(kCount));

  // Direct loop, same semantics as bench::CreateBootTimed in the fig*
  // binaries.
  auto host_spec = scenario::ResolveHostSpec({});
  ASSERT_TRUE(host_spec.ok());
  auto mechanisms = scenario::MechanismsByName("xl");
  ASSERT_TRUE(mechanisms.ok());
  sim::Engine engine(1);
  lightvm::Host host(&engine, *host_spec, *mechanisms);
  auto image = toolstack::ImageByName("daytime");
  ASSERT_TRUE(image.ok());
  for (int i = 1; i <= kCount; ++i) {
    toolstack::VmConfig config;
    config.name = "unikernel-" + std::to_string(i);
    config.image = *image;
    lv::TimePoint t0 = engine.now();
    auto domid = sim::RunToCompletion(engine, host.CreateVm(std::move(config)));
    ASSERT_TRUE(domid.ok()) << domid.error().ToString();
    double create_ms = (engine.now() - t0).ms();
    lv::TimePoint t1 = engine.now();
    guests::Guest* guest = host.guest(*domid);
    ASSERT_NE(guest, nullptr);
    ASSERT_TRUE(sim::RunUntilCondition(engine, [&] { return guest->booted(); },
                                       lv::Duration::Seconds(600)));
    double boot_ms = (guest->booted_at() - t1).ms();

    const auto& [scn_create, scn_boot] = scenario_ms.at(i);
    EXPECT_NEAR(scn_create, create_ms, create_ms * 0.01)
        << "create_ms diverges at n=" << i;
    EXPECT_NEAR(scn_boot, boot_ms, boot_ms * 0.01)
        << "boot_ms diverges at n=" << i;
  }
}

}  // namespace
