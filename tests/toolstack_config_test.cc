// Tests for the xl.cfg-style configuration parser and the image registry.
#include <gtest/gtest.h>

#include "src/toolstack/config.h"

namespace toolstack {
namespace {

TEST(ImageRegistryTest, AllPaperImagesResolve) {
  for (const char* name :
       {"daytime", "noop", "minipython", "clickos-fw", "tls-unikernel", "tinyx",
        "tinyx-micropython", "tinyx-tls", "debian", "debian-micropython"}) {
    auto image = ImageByName(name);
    ASSERT_TRUE(image.ok()) << name;
    EXPECT_EQ(image->name, name);
  }
  EXPECT_EQ(ImageByName("windows-95").code(), lv::ErrorCode::kNotFound);
}

TEST(ConfigParserTest, FullConfig) {
  auto config = ParseVmConfig(R"(
# a web frontend
name   = "web0"
kernel = "daytime"
memory = 8
vcpus  = 2
vif    = [ "bridge=xenbr0" ]
)");
  ASSERT_TRUE(config.ok()) << config.error().message;
  EXPECT_EQ(config->name, "web0");
  EXPECT_EQ(config->image.name, "daytime");
  EXPECT_EQ(config->image.memory, lv::Bytes::MiB(8));  // Override applied.
  EXPECT_EQ(config->vcpus, 2);
}

TEST(ConfigParserTest, DefaultsWithoutOverrides) {
  auto config = ParseVmConfig("name = vm1\nkernel = minipython\n");
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->image.memory, guests::MinipythonUnikernel().memory);
  EXPECT_EQ(config->vcpus, 1);
}

TEST(ConfigParserTest, MissingRequiredKeysFail) {
  EXPECT_EQ(ParseVmConfig("kernel = daytime").code(), lv::ErrorCode::kInvalidArgument);
  EXPECT_EQ(ParseVmConfig("name = x").code(), lv::ErrorCode::kInvalidArgument);
  EXPECT_EQ(ParseVmConfig("").code(), lv::ErrorCode::kInvalidArgument);
}

TEST(ConfigParserTest, BadValuesFail) {
  EXPECT_EQ(ParseVmConfig("name=x\nkernel=daytime\nmemory=-4").code(),
            lv::ErrorCode::kInvalidArgument);
  EXPECT_EQ(ParseVmConfig("name=x\nkernel=daytime\nvcpus=0").code(),
            lv::ErrorCode::kInvalidArgument);
  EXPECT_EQ(ParseVmConfig("name=x\nkernel=no-such-image").code(),
            lv::ErrorCode::kNotFound);
  EXPECT_EQ(ParseVmConfig("just some words").code(), lv::ErrorCode::kInvalidArgument);
}

TEST(ConfigParserTest, CommentsAndWhitespaceTolerated) {
  auto config = ParseVmConfig(
      "  name = 'fw'   # quoted with spaces\n\n\t kernel = clickos-fw # trailing\n");
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->name, "fw");
  EXPECT_EQ(config->image.name, "clickos-fw");
}

TEST(ConfigParserTest, UnknownKeysIgnored) {
  auto config = ParseVmConfig(
      "name=x\nkernel=daytime\non_crash=restart\ndisk=[ 'phy:/dev/vg/x' ]\n");
  EXPECT_TRUE(config.ok());
}

}  // namespace
}  // namespace toolstack
