// Cluster control-plane tests: placement policies over synthetic node views,
// admission accounting, deploy/retire/migrate round-trips on real hosts, and
// the two cluster-level guarantees — concurrent deploys never oversubscribe a
// node, and same-seed runs place and time identically.
#include <gtest/gtest.h>

#include "src/base/strings.h"
#include "src/cluster/cluster.h"
#include "src/sim/run.h"

namespace cluster {
namespace {

using lv::Bytes;
using lv::Duration;

toolstack::VmConfig DaytimeConfig(const std::string& name) {
  toolstack::VmConfig config;
  config.name = name;
  config.image = guests::DaytimeUnikernel();
  return config;
}

NodeView View(int index, int64_t vms, Bytes committed,
              Bytes budget = Bytes::GiB(1), int64_t active = 0) {
  NodeView v;
  v.index = index;
  v.memory_budget = budget;
  v.memory_committed = committed;
  v.vcpu_budget = 64;
  v.vcpus_committed = vms;
  v.vms = vms;
  v.active_creates = active;
  return v;
}

TEST(PlacementTest, AdmitsChecksBothBudgets) {
  toolstack::VmConfig config = DaytimeConfig("vm");
  NodeView v = View(0, 0, Bytes::MiB(0), Bytes::MiB(8));
  EXPECT_TRUE(Admits(v, config));
  v.memory_committed = Bytes::MiB(8) - config.image.memory + Bytes::KiB(1);
  EXPECT_FALSE(Admits(v, config));  // Memory budget exhausted.
  v.memory_committed = Bytes::MiB(0);
  v.vcpus_committed = v.vcpu_budget;
  EXPECT_FALSE(Admits(v, config));  // vCPU budget exhausted.
}

TEST(PlacementTest, FirstFitPacksLowestIndexWithBudget) {
  toolstack::VmConfig config = DaytimeConfig("vm");
  FirstFit policy;
  std::vector<NodeView> nodes = {View(0, 5, Bytes::MiB(900)),
                                 View(1, 0, Bytes::MiB(0)),
                                 View(2, 0, Bytes::MiB(0))};
  EXPECT_EQ(policy.Pick(nodes, config), 0);
  nodes[0].memory_committed = nodes[0].memory_budget;  // Node 0 full.
  EXPECT_EQ(policy.Pick(nodes, config), 1);
}

TEST(PlacementTest, LeastLoadedCountsInFlightCreates) {
  toolstack::VmConfig config = DaytimeConfig("vm");
  LeastLoaded policy;
  std::vector<NodeView> nodes = {View(0, 2, Bytes::MiB(8)),
                                 View(1, 1, Bytes::MiB(4), Bytes::GiB(1), 3),
                                 View(2, 3, Bytes::MiB(12))};
  // Node 1 has fewest running VMs but 3 creates in flight (load 4); node 0
  // wins with load 2.
  EXPECT_EQ(policy.Pick(nodes, config), 0);
  // Ties break toward the lower index.
  nodes[2].vms = 2;
  EXPECT_EQ(policy.Pick(nodes, config), 0);
}

TEST(PlacementTest, MemoryBalancePicksMostFree) {
  toolstack::VmConfig config = DaytimeConfig("vm");
  MemoryBalance policy;
  std::vector<NodeView> nodes = {View(0, 9, Bytes::MiB(600)),
                                 View(1, 1, Bytes::MiB(100)),
                                 View(2, 5, Bytes::MiB(300))};
  EXPECT_EQ(policy.Pick(nodes, config), 1);
  // A full node is never picked even if others are also tight.
  nodes[1].memory_committed = nodes[1].memory_budget;
  EXPECT_EQ(policy.Pick(nodes, config), 2);
}

TEST(PlacementTest, AllPoliciesReturnMinusOneWhenNothingAdmits) {
  toolstack::VmConfig config = DaytimeConfig("vm");
  std::vector<NodeView> nodes = {View(0, 0, Bytes::MiB(8), Bytes::MiB(8)),
                                 View(1, 0, Bytes::MiB(8), Bytes::MiB(8))};
  FirstFit ff;
  LeastLoaded ll;
  MemoryBalance mb;
  EXPECT_EQ(ff.Pick(nodes, config), -1);
  EXPECT_EQ(ll.Pick(nodes, config), -1);
  EXPECT_EQ(mb.Pick(nodes, config), -1);
}

TEST(PlacementTest, MakePolicyByName) {
  EXPECT_STREQ(MakePolicy("first-fit")->name(), "first-fit");
  EXPECT_STREQ(MakePolicy("least-loaded")->name(), "least-loaded");
  EXPECT_STREQ(MakePolicy("memory-balance")->name(), "memory-balance");
  EXPECT_EQ(MakePolicy("round-robin"), nullptr);
}

class ClusterTest : public ::testing::Test {
 public:
  // Small nodes keep the tests fast: 4-core Xeon, LightVM toolstack.
  ClusterSpec SmallSpec(int nodes) {
    ClusterSpec spec;
    spec.num_nodes = nodes;
    spec.node = lightvm::HostSpec::Xeon4Core();
    spec.mechanisms = lightvm::Mechanisms::LightVm();
    return spec;
  }

  void Prefill(Cluster& cl) {
    for (int n = 0; n < cl.num_nodes(); ++n) {
      cl.host(n).AddShellFlavor(guests::DaytimeUnikernel().memory, true, 4);
      cl.host(n).PrefillShellPool();
    }
  }

  template <typename T>
  T Run(sim::Co<T> co) {
    return sim::RunToCompletion(engine_, std::move(co));
  }

  sim::Engine engine_{1};
};

TEST_F(ClusterTest, DeployRetireRoundTripKeepsAccounting) {
  Cluster cl(&engine_, SmallSpec(2), std::make_unique<LeastLoaded>());
  Prefill(cl);
  std::vector<Bytes> baseline;
  for (int n = 0; n < 2; ++n) {
    baseline.push_back(cl.host(n).MemoryUsed());
  }

  std::vector<VmHandle> handles;
  for (int i = 0; i < 4; ++i) {
    auto h = Run(cl.Deploy(DaytimeConfig(lv::StrFormat("vm%d", i)), true));
    ASSERT_TRUE(h.ok()) << h.error().message;
    handles.push_back(*h);
  }
  // Least-loaded spreads 4 serial deploys 2/2.
  EXPECT_EQ(cl.host(0).num_vms(), 2);
  EXPECT_EQ(cl.host(1).num_vms(), 2);
  EXPECT_EQ(cl.total_vms(), 4);
  EXPECT_EQ(cl.vms_deployed(), 4);
  for (const NodeView& v : cl.views()) {
    EXPECT_EQ(v.memory_committed, guests::DaytimeUnikernel().memory * 2);
    EXPECT_EQ(v.vcpus_committed, 2);
    EXPECT_EQ(v.vms, 2);
    EXPECT_EQ(v.active_creates, 0);
  }

  for (const VmHandle& h : handles) {
    EXPECT_TRUE(Run(cl.Retire(h)).ok());
  }
  EXPECT_EQ(cl.total_vms(), 0);
  for (const NodeView& v : cl.views()) {
    EXPECT_EQ(v.memory_committed, Bytes());
    EXPECT_EQ(v.vcpus_committed, 0);
  }
  // No leaked domains or pages on either host.
  for (int n = 0; n < 2; ++n) {
    EXPECT_EQ(cl.host(n).MemoryUsed(), baseline[static_cast<size_t>(n)]);
    EXPECT_EQ(cl.host(n).hv().NumDomainsInState(hv::DomainState::kDead), 0);
  }
  // Retiring a stale handle fails cleanly.
  EXPECT_EQ(Run(cl.Retire(handles[0])).code(), lv::ErrorCode::kNotFound);
}

TEST_F(ClusterTest, MigrateRehomesVmAndMovesBudget) {
  Cluster cl(&engine_, SmallSpec(2), std::make_unique<FirstFit>());
  Prefill(cl);
  auto h = Run(cl.Deploy(DaytimeConfig("mig0"), true));
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->node, 0);  // First-fit lands on node 0.

  auto moved = Run(cl.Migrate(*h, 1));
  ASSERT_TRUE(moved.ok()) << moved.error().message;
  EXPECT_EQ(moved->node, 1);
  EXPECT_EQ(cl.migrations(), 1);
  EXPECT_EQ(cl.host(0).num_vms(), 0);
  EXPECT_EQ(cl.host(1).num_vms(), 1);
  EXPECT_EQ(cl.host(1).migration_daemon().migrations_received(), 1);
  EXPECT_EQ(cl.view(0).memory_committed, Bytes());
  EXPECT_EQ(cl.view(1).memory_committed, guests::DaytimeUnikernel().memory);

  EXPECT_TRUE(Run(cl.Retire(*moved)).ok());
  EXPECT_EQ(cl.total_vms(), 0);
}

TEST_F(ClusterTest, AdmissionRejectsWhenEveryNodeIsFull) {
  ClusterSpec spec = SmallSpec(2);
  // Budget for exactly three daytime unikernels per node.
  spec.memory_budget = guests::DaytimeUnikernel().memory * 3;
  Cluster cl(&engine_, spec, std::make_unique<FirstFit>());
  Prefill(cl);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(Run(cl.Deploy(DaytimeConfig(lv::StrFormat("vm%d", i)), true)).ok());
  }
  auto overflow = Run(cl.Deploy(DaytimeConfig("vm6"), true));
  EXPECT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.error().code, lv::ErrorCode::kUnavailable);
  EXPECT_EQ(cl.admission_rejects(), 1);
  EXPECT_EQ(cl.deploy_failures(), 1);
  EXPECT_EQ(cl.total_vms(), 6);
}

// The core admission guarantee: budgets are committed before the first
// suspension point, so even deploys launched in the same event cannot
// collectively oversubscribe a node.
TEST_F(ClusterTest, ConcurrentDeploysNeverOversubscribe) {
  ClusterSpec spec = SmallSpec(2);
  spec.memory_budget = guests::DaytimeUnikernel().memory * 2;  // 4 slots total.
  Cluster cl(&engine_, spec, std::make_unique<LeastLoaded>());
  Prefill(cl);

  int ok = 0;
  int rejected = 0;
  int done = 0;
  auto deploy = [&](int i) -> sim::Co<void> {
    auto h = co_await cl.Deploy(DaytimeConfig(lv::StrFormat("vm%d", i)), true);
    if (h.ok()) {
      ++ok;
    } else {
      EXPECT_EQ(h.error().code, lv::ErrorCode::kUnavailable);
      ++rejected;
    }
    ++done;
  };
  for (int i = 0; i < 7; ++i) {
    engine_.Spawn(deploy(i));
  }
  ASSERT_TRUE(sim::RunUntilCondition(engine_, [&] { return done == 7; },
                                     Duration::Seconds(60)));
  EXPECT_EQ(ok, 4);
  EXPECT_EQ(rejected, 3);
  EXPECT_EQ(cl.admission_rejects(), 3);
  EXPECT_EQ(cl.total_vms(), 4);
  for (const NodeView& v : cl.views()) {
    EXPECT_LE(v.memory_committed, v.memory_budget);
    EXPECT_EQ(v.vms, 2);
  }
}

// Same seed, same workload → identical placements and identical virtual time.
TEST_F(ClusterTest, SameSeedRunsAreIdentical) {
  auto run_once = [this](uint64_t seed) {
    sim::Engine engine(seed);
    ClusterSpec spec = SmallSpec(3);
    Cluster cl(&engine, spec, std::make_unique<LeastLoaded>());
    for (int n = 0; n < 3; ++n) {
      cl.host(n).AddShellFlavor(guests::DaytimeUnikernel().memory, true, 4);
      cl.host(n).PrefillShellPool();
    }
    std::vector<int> nodes(12, -1);
    int done = 0;
    auto deploy = [&](int i) -> sim::Co<void> {
      auto h = co_await cl.Deploy(DaytimeConfig(lv::StrFormat("vm%d", i)), true);
      LV_CHECK(h.ok());
      nodes[static_cast<size_t>(i)] = h->node;
      ++done;
    };
    for (int i = 0; i < 12; ++i) {
      engine.Spawn(deploy(i));
    }
    bool finished = sim::RunUntilCondition(engine, [&] { return done == 12; },
                                           Duration::Seconds(60));
    LV_CHECK(finished);
    return std::make_pair(nodes, engine.now().ns());
  };
  auto [nodes_a, ns_a] = run_once(7);
  auto [nodes_b, ns_b] = run_once(7);
  EXPECT_EQ(nodes_a, nodes_b);
  EXPECT_EQ(ns_a, ns_b);
}

}  // namespace
}  // namespace cluster
