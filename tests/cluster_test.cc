// Cluster control-plane tests: placement policies over synthetic node views,
// admission accounting, deploy/retire/migrate round-trips on real hosts, and
// the two cluster-level guarantees — concurrent deploys never oversubscribe a
// node, and same-seed runs place and time identically.
#include <gtest/gtest.h>

#include "src/base/strings.h"
#include "src/cluster/cluster.h"
#include "src/core/verify.h"
#include "src/faults/injector.h"
#include "src/sim/run.h"

namespace cluster {
namespace {

using lv::Bytes;
using lv::Duration;

toolstack::VmConfig DaytimeConfig(const std::string& name) {
  toolstack::VmConfig config;
  config.name = name;
  config.image = guests::DaytimeUnikernel();
  return config;
}

NodeView View(int index, int64_t vms, Bytes committed,
              Bytes budget = Bytes::GiB(1), int64_t active = 0) {
  NodeView v;
  v.index = index;
  v.memory_budget = budget;
  v.memory_committed = committed;
  v.vcpu_budget = 64;
  v.vcpus_committed = vms;
  v.vms = vms;
  v.active_creates = active;
  return v;
}

TEST(PlacementTest, AdmitsChecksBothBudgets) {
  toolstack::VmConfig config = DaytimeConfig("vm");
  NodeView v = View(0, 0, Bytes::MiB(0), Bytes::MiB(8));
  EXPECT_TRUE(Admits(v, config));
  v.memory_committed = Bytes::MiB(8) - config.image.memory + Bytes::KiB(1);
  EXPECT_FALSE(Admits(v, config));  // Memory budget exhausted.
  v.memory_committed = Bytes::MiB(0);
  v.vcpus_committed = v.vcpu_budget;
  EXPECT_FALSE(Admits(v, config));  // vCPU budget exhausted.
}

TEST(PlacementTest, FirstFitPacksLowestIndexWithBudget) {
  toolstack::VmConfig config = DaytimeConfig("vm");
  FirstFit policy;
  std::vector<NodeView> nodes = {View(0, 5, Bytes::MiB(900)),
                                 View(1, 0, Bytes::MiB(0)),
                                 View(2, 0, Bytes::MiB(0))};
  EXPECT_EQ(policy.Pick(nodes, config), 0);
  nodes[0].memory_committed = nodes[0].memory_budget;  // Node 0 full.
  EXPECT_EQ(policy.Pick(nodes, config), 1);
}

TEST(PlacementTest, LeastLoadedCountsInFlightCreates) {
  toolstack::VmConfig config = DaytimeConfig("vm");
  LeastLoaded policy;
  std::vector<NodeView> nodes = {View(0, 2, Bytes::MiB(8)),
                                 View(1, 1, Bytes::MiB(4), Bytes::GiB(1), 3),
                                 View(2, 3, Bytes::MiB(12))};
  // Node 1 has fewest running VMs but 3 creates in flight (load 4); node 0
  // wins with load 2.
  EXPECT_EQ(policy.Pick(nodes, config), 0);
  // Ties break toward the lower index.
  nodes[2].vms = 2;
  EXPECT_EQ(policy.Pick(nodes, config), 0);
}

TEST(PlacementTest, MemoryBalancePicksMostFree) {
  toolstack::VmConfig config = DaytimeConfig("vm");
  MemoryBalance policy;
  std::vector<NodeView> nodes = {View(0, 9, Bytes::MiB(600)),
                                 View(1, 1, Bytes::MiB(100)),
                                 View(2, 5, Bytes::MiB(300))};
  EXPECT_EQ(policy.Pick(nodes, config), 1);
  // A full node is never picked even if others are also tight.
  nodes[1].memory_committed = nodes[1].memory_budget;
  EXPECT_EQ(policy.Pick(nodes, config), 2);
}

TEST(PlacementTest, AllPoliciesReturnMinusOneWhenNothingAdmits) {
  toolstack::VmConfig config = DaytimeConfig("vm");
  std::vector<NodeView> nodes = {View(0, 0, Bytes::MiB(8), Bytes::MiB(8)),
                                 View(1, 0, Bytes::MiB(8), Bytes::MiB(8))};
  FirstFit ff;
  LeastLoaded ll;
  MemoryBalance mb;
  EXPECT_EQ(ff.Pick(nodes, config), -1);
  EXPECT_EQ(ll.Pick(nodes, config), -1);
  EXPECT_EQ(mb.Pick(nodes, config), -1);
}

TEST(PlacementTest, MakePolicyByName) {
  EXPECT_STREQ(MakePolicy("first-fit")->name(), "first-fit");
  EXPECT_STREQ(MakePolicy("least-loaded")->name(), "least-loaded");
  EXPECT_STREQ(MakePolicy("memory-balance")->name(), "memory-balance");
  EXPECT_EQ(MakePolicy("round-robin"), nullptr);
}

class ClusterTest : public ::testing::Test {
 public:
  // Small nodes keep the tests fast: 4-core Xeon, LightVM toolstack.
  ClusterSpec SmallSpec(int nodes) {
    ClusterSpec spec;
    spec.num_nodes = nodes;
    spec.node = lightvm::HostSpec::Xeon4Core();
    spec.mechanisms = lightvm::Mechanisms::LightVm();
    return spec;
  }

  void Prefill(Cluster& cl) {
    for (int n = 0; n < cl.num_nodes(); ++n) {
      cl.host(n).AddShellFlavor(guests::DaytimeUnikernel().memory, true, 4);
      cl.host(n).PrefillShellPool();
    }
  }

  template <typename T>
  T Run(sim::Co<T> co) {
    return sim::RunToCompletion(engine_, std::move(co));
  }

  sim::Engine engine_{1};
};

TEST_F(ClusterTest, DeployRetireRoundTripKeepsAccounting) {
  Cluster cl(&engine_, SmallSpec(2), std::make_unique<LeastLoaded>());
  Prefill(cl);
  std::vector<Bytes> baseline;
  for (int n = 0; n < 2; ++n) {
    baseline.push_back(cl.host(n).MemoryUsed());
  }

  std::vector<VmHandle> handles;
  for (int i = 0; i < 4; ++i) {
    auto h = Run(cl.Deploy(DaytimeConfig(lv::StrFormat("vm%d", i)), true));
    ASSERT_TRUE(h.ok()) << h.error().message;
    handles.push_back(*h);
  }
  // Least-loaded spreads 4 serial deploys 2/2.
  EXPECT_EQ(cl.host(0).num_vms(), 2);
  EXPECT_EQ(cl.host(1).num_vms(), 2);
  EXPECT_EQ(cl.total_vms(), 4);
  EXPECT_EQ(cl.vms_deployed(), 4);
  for (const NodeView& v : cl.views()) {
    EXPECT_EQ(v.memory_committed, guests::DaytimeUnikernel().memory * 2);
    EXPECT_EQ(v.vcpus_committed, 2);
    EXPECT_EQ(v.vms, 2);
    EXPECT_EQ(v.active_creates, 0);
  }

  for (const VmHandle& h : handles) {
    EXPECT_TRUE(Run(cl.Retire(h)).ok());
  }
  EXPECT_EQ(cl.total_vms(), 0);
  for (const NodeView& v : cl.views()) {
    EXPECT_EQ(v.memory_committed, Bytes());
    EXPECT_EQ(v.vcpus_committed, 0);
  }
  // No leaked domains or pages on either host.
  for (int n = 0; n < 2; ++n) {
    EXPECT_EQ(cl.host(n).MemoryUsed(), baseline[static_cast<size_t>(n)]);
    EXPECT_EQ(cl.host(n).hv().NumDomainsInState(hv::DomainState::kDead), 0);
  }
  // Retiring a stale handle fails cleanly.
  EXPECT_EQ(Run(cl.Retire(handles[0])).code(), lv::ErrorCode::kNotFound);
}

TEST_F(ClusterTest, MigrateRehomesVmAndMovesBudget) {
  Cluster cl(&engine_, SmallSpec(2), std::make_unique<FirstFit>());
  Prefill(cl);
  auto h = Run(cl.Deploy(DaytimeConfig("mig0"), true));
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->node, 0);  // First-fit lands on node 0.

  auto moved = Run(cl.Migrate(*h, 1));
  ASSERT_TRUE(moved.ok()) << moved.error().message;
  EXPECT_EQ(moved->node, 1);
  EXPECT_EQ(cl.migrations(), 1);
  EXPECT_EQ(cl.host(0).num_vms(), 0);
  EXPECT_EQ(cl.host(1).num_vms(), 1);
  EXPECT_EQ(cl.host(1).migration_daemon().migrations_received(), 1);
  EXPECT_EQ(cl.view(0).memory_committed, Bytes());
  EXPECT_EQ(cl.view(1).memory_committed, guests::DaytimeUnikernel().memory);

  EXPECT_TRUE(Run(cl.Retire(*moved)).ok());
  EXPECT_EQ(cl.total_vms(), 0);
}

TEST_F(ClusterTest, AdmissionRejectsWhenEveryNodeIsFull) {
  ClusterSpec spec = SmallSpec(2);
  // Budget for exactly three daytime unikernels per node.
  spec.memory_budget = guests::DaytimeUnikernel().memory * 3;
  Cluster cl(&engine_, spec, std::make_unique<FirstFit>());
  Prefill(cl);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(Run(cl.Deploy(DaytimeConfig(lv::StrFormat("vm%d", i)), true)).ok());
  }
  auto overflow = Run(cl.Deploy(DaytimeConfig("vm6"), true));
  EXPECT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.error().code, lv::ErrorCode::kUnavailable);
  EXPECT_EQ(cl.admission_rejects(), 1);
  EXPECT_EQ(cl.deploy_failures(), 1);
  EXPECT_EQ(cl.total_vms(), 6);
}

// The core admission guarantee: budgets are committed before the first
// suspension point, so even deploys launched in the same event cannot
// collectively oversubscribe a node.
TEST_F(ClusterTest, ConcurrentDeploysNeverOversubscribe) {
  ClusterSpec spec = SmallSpec(2);
  spec.memory_budget = guests::DaytimeUnikernel().memory * 2;  // 4 slots total.
  Cluster cl(&engine_, spec, std::make_unique<LeastLoaded>());
  Prefill(cl);

  int ok = 0;
  int rejected = 0;
  int done = 0;
  auto deploy = [&](int i) -> sim::Co<void> {
    auto h = co_await cl.Deploy(DaytimeConfig(lv::StrFormat("vm%d", i)), true);
    if (h.ok()) {
      ++ok;
    } else {
      EXPECT_EQ(h.error().code, lv::ErrorCode::kUnavailable);
      ++rejected;
    }
    ++done;
  };
  for (int i = 0; i < 7; ++i) {
    engine_.Spawn(deploy(i));
  }
  ASSERT_TRUE(sim::RunUntilCondition(engine_, [&] { return done == 7; },
                                     Duration::Seconds(60)));
  EXPECT_EQ(ok, 4);
  EXPECT_EQ(rejected, 3);
  EXPECT_EQ(cl.admission_rejects(), 3);
  EXPECT_EQ(cl.total_vms(), 4);
  for (const NodeView& v : cl.views()) {
    EXPECT_LE(v.memory_committed, v.memory_budget);
    EXPECT_EQ(v.vms, 2);
  }
}

// Same seed, same workload → identical placements and identical virtual time.
TEST_F(ClusterTest, SameSeedRunsAreIdentical) {
  auto run_once = [this](uint64_t seed) {
    sim::Engine engine(seed);
    ClusterSpec spec = SmallSpec(3);
    Cluster cl(&engine, spec, std::make_unique<LeastLoaded>());
    for (int n = 0; n < 3; ++n) {
      cl.host(n).AddShellFlavor(guests::DaytimeUnikernel().memory, true, 4);
      cl.host(n).PrefillShellPool();
    }
    std::vector<int> nodes(12, -1);
    int done = 0;
    auto deploy = [&](int i) -> sim::Co<void> {
      auto h = co_await cl.Deploy(DaytimeConfig(lv::StrFormat("vm%d", i)), true);
      LV_CHECK(h.ok());
      nodes[static_cast<size_t>(i)] = h->node;
      ++done;
    };
    for (int i = 0; i < 12; ++i) {
      engine.Spawn(deploy(i));
    }
    bool finished = sim::RunUntilCondition(engine, [&] { return done == 12; },
                                           Duration::Seconds(60));
    LV_CHECK(finished);
    return std::make_pair(nodes, engine.now().ns());
  };
  auto [nodes_a, ns_a] = run_once(7);
  auto [nodes_b, ns_b] = run_once(7);
  EXPECT_EQ(nodes_a, nodes_b);
  EXPECT_EQ(ns_a, ns_b);
}

// --- Self-healing under fault injection -------------------------------------

// Everything one chaos run produces that determinism and invariants are
// asserted over.
struct ChaosOutcome {
  std::vector<int> placements;  // node per fleet VM, -1 = deploy failed
  std::string fault_log;
  std::vector<double> recovery_ms;
  int64_t ok_deploys = 0;
  int64_t node_failures = 0;
  int64_t vms_lost = 0;
  int64_t vms_recovered = 0;
  int64_t vms_unrecovered = 0;
  int64_t invariant_failures = 0;
  int64_t total_vms = 0;
  int64_t drift_mem = 0;
  int64_t drift_vcpus = 0;
  int64_t end_ns = 0;
};

// Runs a fleet deploy over a small cluster with the health monitor on and a
// seeded random fault plan armed, then drives the engine until the plan has
// fully fired, every crashed node is written off, and the evacuation queue
// has drained.
ChaosOutcome RunChaos(uint64_t seed, int nodes, int vms, int events) {
  sim::Engine engine(seed);
  ClusterSpec spec;
  spec.num_nodes = nodes;
  spec.node = lightvm::HostSpec::Xeon4Core();
  spec.mechanisms = lightvm::Mechanisms::LightVm();
  Cluster cl(&engine, spec, std::make_unique<LeastLoaded>());
  for (int n = 0; n < nodes; ++n) {
    cl.host(n).AddShellFlavor(guests::DaytimeUnikernel().memory, true, 4);
    cl.host(n).PrefillShellPool();
  }
  cl.StartHealthMonitor();

  faults::FaultPlan plan =
      faults::FaultPlan::Random(seed, nodes, events, Duration::Millis(150));
  faults::FaultTargets targets;
  targets.crash_node = [&](int node) { cl.CrashNode(node); };
  targets.reboot_node = [&](int node) { cl.RequestReboot(node); };
  targets.restart_xenstore = [&](int node, Duration downtime) {
    if (cl.host(node).store() != nullptr) {
      cl.host(node).store()->InjectRestart(downtime);
    }
  };
  targets.stall_hotplug = [&](int node, Duration stall, int count) {
    cl.host(node).fault_hooks().hotplug_stall = stall;
    cl.host(node).fault_hooks().stall_next_hotplugs += count;
  };
  targets.partition_link = [&](int a, int b, Duration length) {
    cl.link(a, b)->Partition(length);
  };
  targets.fail_creates = [&](int node, int count) {
    cl.host(node).fault_hooks().fail_next_creates += count;
  };
  faults::FaultInjector injector(&engine, std::move(plan), std::move(targets));
  injector.Arm();

  ChaosOutcome out;
  out.placements.assign(static_cast<size_t>(vms), -1);
  int next = 0;
  int done = 0;
  auto worker = [&]() -> sim::Co<void> {
    while (next < vms) {
      int i = next++;
      auto h = co_await cl.Deploy(DaytimeConfig(lv::StrFormat("vm%d", i)), true);
      if (h.ok()) {
        out.placements[static_cast<size_t>(i)] = h->node;
      }
      ++done;
    }
  };
  for (int w = 0; w < 4; ++w) {
    engine.Spawn(worker());
  }
  LV_CHECK(sim::RunUntilCondition(engine, [&] { return done >= vms; },
                                  Duration::Seconds(7200)));
  // Quiesce: all faults fired, every crash detected (written off) AND
  // settled (the settle pass destroys the dead node's VMs over simulated
  // time, so counting live VMs before it finishes would see both the
  // originals and their replacements), every evacuation either recovered or
  // given up.
  auto quiet = [&] {
    if (injector.injected() != static_cast<int64_t>(injector.plan().size())) {
      return false;
    }
    for (int n = 0; n < nodes; ++n) {
      const lightvm::Host& h = cl.host(n);
      if (h.crashed() && (cl.node_alive(n) || !h.crash_settled())) {
        return false;  // dead but not yet detected, or still tearing down
      }
    }
    return cl.vms_lost() == cl.vms_recovered() + cl.vms_unrecovered();
  };
  LV_CHECK(sim::RunUntilCondition(engine, quiet, Duration::Seconds(7200)));

  for (int n : out.placements) {
    if (n >= 0) {
      ++out.ok_deploys;
    }
  }
  out.fault_log = injector.plan().ToString();
  out.recovery_ms = cl.recovery_ms();
  out.node_failures = cl.node_failures();
  out.vms_lost = cl.vms_lost();
  out.vms_recovered = cl.vms_recovered();
  out.vms_unrecovered = cl.vms_unrecovered();
  out.invariant_failures = cl.invariant_failures();
  out.total_vms = cl.total_vms();
  Cluster::Drift drift = cl.AdmissionDrift();
  out.drift_mem = drift.memory.count();
  out.drift_vcpus = drift.vcpus;
  out.end_ns = engine.now().ns();

  // Per-node leak invariants hold at quiescence whatever the plan did.
  for (int n = 0; n < nodes; ++n) {
    lv::Status ok = lightvm::VerifyNoLeakedResources(cl.host(n));
    EXPECT_TRUE(ok.ok()) << "seed " << seed << " node " << n << ": "
                         << ok.error().message << "\nplan:\n" << out.fault_log;
  }
  return out;
}

// Property sweep: whatever a random fault plan throws at the cluster, the
// control plane reconverges — every lost VM is either recovered or reported
// unrecovered, the admission ledger shows zero drift, the per-sweep
// invariant checks never fired, and the live VM count matches the books.
TEST_F(ClusterTest, RandomFaultPlansConvergeWithExactAccounting) {
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    ChaosOutcome out = RunChaos(seed, /*nodes=*/3, /*vms=*/30, /*events=*/6);
    EXPECT_EQ(out.invariant_failures, 0) << "seed " << seed << "\n" << out.fault_log;
    EXPECT_EQ(out.drift_mem, 0) << "seed " << seed;
    EXPECT_EQ(out.drift_vcpus, 0) << "seed " << seed;
    EXPECT_EQ(out.vms_lost, out.vms_recovered + out.vms_unrecovered)
        << "seed " << seed;
    EXPECT_EQ(out.total_vms, out.ok_deploys - out.vms_unrecovered)
        << "seed " << seed << "\n" << out.fault_log;
    EXPECT_GT(out.ok_deploys, 0) << "seed " << seed;
  }
}

// Same seed + same plan → byte-identical everything: fault log, placements,
// recovery latencies, final virtual time.
TEST_F(ClusterTest, ChaosRunsAreByteIdenticalAcrossRuns) {
  ChaosOutcome a = RunChaos(7, 3, 30, 8);
  ChaosOutcome b = RunChaos(7, 3, 30, 8);
  EXPECT_EQ(a.fault_log, b.fault_log);
  EXPECT_EQ(a.placements, b.placements);
  EXPECT_EQ(a.recovery_ms, b.recovery_ms);
  EXPECT_EQ(a.node_failures, b.node_failures);
  EXPECT_EQ(a.vms_lost, b.vms_lost);
  EXPECT_EQ(a.vms_recovered, b.vms_recovered);
  EXPECT_EQ(a.end_ns, b.end_ns);
}

// A node dying between placement and create completion: Deploy releases the
// reservation and re-places once on the survivors.
TEST_F(ClusterTest, DeployReplacesNodeThatDiesMidCreate) {
  Cluster cl(&engine_, SmallSpec(2), std::make_unique<LeastLoaded>());
  Prefill(cl);
  cl.StartHealthMonitor();

  // Crash node 0 (the tie-break pick for the first deploy) while its create
  // job is in flight.
  engine_.Schedule(Duration::Micros(200), [&] { cl.CrashNode(0); });
  auto h = Run(cl.Deploy(DaytimeConfig("replaced"), true));
  ASSERT_TRUE(h.ok()) << h.error().message;
  EXPECT_EQ(h->node, 1);
  EXPECT_EQ(cl.deploy_replacements(), 1);
  EXPECT_EQ(cl.host(1).num_vms(), 1);

  Cluster::Drift drift = cl.AdmissionDrift();
  EXPECT_EQ(drift.memory.count(), 0);
  EXPECT_EQ(drift.vcpus, 0);
  // Nothing was ever placed on node 0, so the write-off evacuates nothing.
  ASSERT_TRUE(sim::RunUntilCondition(engine_, [&] { return !cl.node_alive(0); },
                                     Duration::Seconds(60)));
  EXPECT_EQ(cl.vms_lost(), 0);
}

// The double failure: the re-placed attempt ALSO loses its node. Deploy must
// fail with a typed error, leaking no reservation on either node.
TEST_F(ClusterTest, DeployFailsTypedWhenReplacementNodeAlsoDies) {
  Cluster cl(&engine_, SmallSpec(2), std::make_unique<LeastLoaded>());
  Prefill(cl);
  cl.StartHealthMonitor();

  engine_.Schedule(Duration::Micros(200), [&] { cl.CrashNode(0); });
  // Crash node 1 as soon as the re-placed create reaches it.
  auto second_killer = [&]() -> sim::Co<void> {
    while (cl.host(1).node().jobs_active() == 0) {
      co_await engine_.Sleep(Duration::Micros(50));
    }
    cl.CrashNode(1);
  };
  engine_.Spawn(second_killer());

  auto h = Run(cl.Deploy(DaytimeConfig("doomed"), true));
  ASSERT_FALSE(h.ok());
  EXPECT_EQ(h.error().code, lv::ErrorCode::kUnavailable);
  EXPECT_EQ(h.error().message, "target node died during deploy");
  EXPECT_EQ(cl.deploy_replacements(), 1);
  EXPECT_EQ(cl.deploy_failures(), 1);
  Cluster::Drift drift = cl.AdmissionDrift();
  EXPECT_EQ(drift.memory.count(), 0);
  EXPECT_EQ(drift.vcpus, 0);
}

}  // namespace
}  // namespace cluster
