// Cluster control-plane tests: placement policies over synthetic node views,
// admission accounting, deploy/retire/migrate round-trips on real hosts, and
// the two cluster-level guarantees — concurrent deploys never oversubscribe a
// node, and same-seed runs place and time identically.
#include <gtest/gtest.h>

#include <sstream>

#include "src/base/strings.h"
#include "src/cluster/cluster.h"
#include "src/core/verify.h"
#include "src/faults/injector.h"
#include "src/metrics/metrics.h"
#include "src/sim/run.h"

namespace cluster {
namespace {

using lv::Bytes;
using lv::Duration;

toolstack::VmConfig DaytimeConfig(const std::string& name) {
  toolstack::VmConfig config;
  config.name = name;
  config.image = guests::DaytimeUnikernel();
  return config;
}

NodeView View(int index, int64_t vms, Bytes committed,
              Bytes budget = Bytes::GiB(1), int64_t active = 0) {
  NodeView v;
  v.index = index;
  v.memory_budget = budget;
  v.memory_committed = committed;
  v.vcpu_budget = 64;
  v.vcpus_committed = vms;
  v.vms = vms;
  v.active_creates = active;
  return v;
}

TEST(PlacementTest, AdmitsChecksBothBudgets) {
  toolstack::VmConfig config = DaytimeConfig("vm");
  NodeView v = View(0, 0, Bytes::MiB(0), Bytes::MiB(8));
  EXPECT_TRUE(Admits(v, config));
  v.memory_committed = Bytes::MiB(8) - config.image.memory + Bytes::KiB(1);
  EXPECT_FALSE(Admits(v, config));  // Memory budget exhausted.
  v.memory_committed = Bytes::MiB(0);
  v.vcpus_committed = v.vcpu_budget;
  EXPECT_FALSE(Admits(v, config));  // vCPU budget exhausted.
}

TEST(PlacementTest, FirstFitPacksLowestIndexWithBudget) {
  toolstack::VmConfig config = DaytimeConfig("vm");
  FirstFit policy;
  std::vector<NodeView> nodes = {View(0, 5, Bytes::MiB(900)),
                                 View(1, 0, Bytes::MiB(0)),
                                 View(2, 0, Bytes::MiB(0))};
  EXPECT_EQ(policy.Pick(nodes, config), 0);
  nodes[0].memory_committed = nodes[0].memory_budget;  // Node 0 full.
  EXPECT_EQ(policy.Pick(nodes, config), 1);
}

TEST(PlacementTest, LeastLoadedCountsInFlightCreates) {
  toolstack::VmConfig config = DaytimeConfig("vm");
  LeastLoaded policy;
  std::vector<NodeView> nodes = {View(0, 2, Bytes::MiB(8)),
                                 View(1, 1, Bytes::MiB(4), Bytes::GiB(1), 3),
                                 View(2, 3, Bytes::MiB(12))};
  // Node 1 has fewest running VMs but 3 creates in flight (load 4); node 0
  // wins with load 2.
  EXPECT_EQ(policy.Pick(nodes, config), 0);
  // Ties break toward the lower index.
  nodes[2].vms = 2;
  EXPECT_EQ(policy.Pick(nodes, config), 0);
}

TEST(PlacementTest, MemoryBalancePicksMostFree) {
  toolstack::VmConfig config = DaytimeConfig("vm");
  MemoryBalance policy;
  std::vector<NodeView> nodes = {View(0, 9, Bytes::MiB(600)),
                                 View(1, 1, Bytes::MiB(100)),
                                 View(2, 5, Bytes::MiB(300))};
  EXPECT_EQ(policy.Pick(nodes, config), 1);
  // A full node is never picked even if others are also tight.
  nodes[1].memory_committed = nodes[1].memory_budget;
  EXPECT_EQ(policy.Pick(nodes, config), 2);
}

TEST(PlacementTest, AllPoliciesReturnMinusOneWhenNothingAdmits) {
  toolstack::VmConfig config = DaytimeConfig("vm");
  std::vector<NodeView> nodes = {View(0, 0, Bytes::MiB(8), Bytes::MiB(8)),
                                 View(1, 0, Bytes::MiB(8), Bytes::MiB(8))};
  FirstFit ff;
  LeastLoaded ll;
  MemoryBalance mb;
  EXPECT_EQ(ff.Pick(nodes, config), -1);
  EXPECT_EQ(ll.Pick(nodes, config), -1);
  EXPECT_EQ(mb.Pick(nodes, config), -1);
}

TEST(PlacementTest, MakePolicyByName) {
  EXPECT_STREQ(MakePolicy("first-fit")->name(), "first-fit");
  EXPECT_STREQ(MakePolicy("least-loaded")->name(), "least-loaded");
  EXPECT_STREQ(MakePolicy("memory-balance")->name(), "memory-balance");
  EXPECT_EQ(MakePolicy("round-robin"), nullptr);
}

class ClusterTest : public ::testing::Test {
 public:
  // Small nodes keep the tests fast: 4-core Xeon, LightVM toolstack.
  ClusterSpec SmallSpec(int nodes) {
    ClusterSpec spec;
    spec.num_nodes = nodes;
    spec.node = lightvm::HostSpec::Xeon4Core();
    spec.mechanisms = lightvm::Mechanisms::LightVm();
    return spec;
  }

  void Prefill(Cluster& cl) {
    for (int n = 0; n < cl.num_nodes(); ++n) {
      cl.host(n).AddShellFlavor(guests::DaytimeUnikernel().memory, true, 4);
      cl.host(n).PrefillShellPool();
    }
  }

  template <typename T>
  T Run(sim::Co<T> co) {
    return sim::RunToCompletion(engine_, std::move(co));
  }

  sim::Engine engine_{1};
};

TEST_F(ClusterTest, DeployRetireRoundTripKeepsAccounting) {
  Cluster cl(&engine_, SmallSpec(2), std::make_unique<LeastLoaded>());
  Prefill(cl);
  std::vector<Bytes> baseline;
  for (int n = 0; n < 2; ++n) {
    baseline.push_back(cl.host(n).MemoryUsed());
  }

  std::vector<VmHandle> handles;
  for (int i = 0; i < 4; ++i) {
    auto h = Run(cl.Deploy(DaytimeConfig(lv::StrFormat("vm%d", i)), true));
    ASSERT_TRUE(h.ok()) << h.error().message;
    handles.push_back(*h);
  }
  // Least-loaded spreads 4 serial deploys 2/2.
  EXPECT_EQ(cl.host(0).num_vms(), 2);
  EXPECT_EQ(cl.host(1).num_vms(), 2);
  EXPECT_EQ(cl.total_vms(), 4);
  EXPECT_EQ(cl.vms_deployed(), 4);
  for (const NodeView& v : cl.views()) {
    EXPECT_EQ(v.memory_committed, guests::DaytimeUnikernel().memory * 2);
    EXPECT_EQ(v.vcpus_committed, 2);
    EXPECT_EQ(v.vms, 2);
    EXPECT_EQ(v.active_creates, 0);
  }

  for (const VmHandle& h : handles) {
    EXPECT_TRUE(Run(cl.Retire(h)).ok());
  }
  EXPECT_EQ(cl.total_vms(), 0);
  for (const NodeView& v : cl.views()) {
    EXPECT_EQ(v.memory_committed, Bytes());
    EXPECT_EQ(v.vcpus_committed, 0);
  }
  // No leaked domains or pages on either host.
  for (int n = 0; n < 2; ++n) {
    EXPECT_EQ(cl.host(n).MemoryUsed(), baseline[static_cast<size_t>(n)]);
    EXPECT_EQ(cl.host(n).hv().NumDomainsInState(hv::DomainState::kDead), 0);
  }
  // Retiring a stale handle fails cleanly.
  EXPECT_EQ(Run(cl.Retire(handles[0])).code(), lv::ErrorCode::kNotFound);
}

TEST_F(ClusterTest, MigrateRehomesVmAndMovesBudget) {
  Cluster cl(&engine_, SmallSpec(2), std::make_unique<FirstFit>());
  Prefill(cl);
  auto h = Run(cl.Deploy(DaytimeConfig("mig0"), true));
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->node, 0);  // First-fit lands on node 0.

  auto moved = Run(cl.Migrate(*h, 1));
  ASSERT_TRUE(moved.ok()) << moved.error().message;
  EXPECT_EQ(moved->node, 1);
  EXPECT_EQ(cl.migrations(), 1);
  EXPECT_EQ(cl.host(0).num_vms(), 0);
  EXPECT_EQ(cl.host(1).num_vms(), 1);
  EXPECT_EQ(cl.host(1).migration_daemon().migrations_received(), 1);
  EXPECT_EQ(cl.view(0).memory_committed, Bytes());
  EXPECT_EQ(cl.view(1).memory_committed, guests::DaytimeUnikernel().memory);

  EXPECT_TRUE(Run(cl.Retire(*moved)).ok());
  EXPECT_EQ(cl.total_vms(), 0);
}

TEST_F(ClusterTest, AdmissionRejectsWhenEveryNodeIsFull) {
  ClusterSpec spec = SmallSpec(2);
  // Budget for exactly three daytime unikernels per node.
  spec.memory_budget = guests::DaytimeUnikernel().memory * 3;
  Cluster cl(&engine_, spec, std::make_unique<FirstFit>());
  Prefill(cl);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(Run(cl.Deploy(DaytimeConfig(lv::StrFormat("vm%d", i)), true)).ok());
  }
  auto overflow = Run(cl.Deploy(DaytimeConfig("vm6"), true));
  EXPECT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.error().code, lv::ErrorCode::kUnavailable);
  EXPECT_EQ(cl.admission_rejects(), 1);
  EXPECT_EQ(cl.deploy_failures(), 1);
  EXPECT_EQ(cl.total_vms(), 6);
}

// The core admission guarantee: budgets are committed before the first
// suspension point, so even deploys launched in the same event cannot
// collectively oversubscribe a node.
TEST_F(ClusterTest, ConcurrentDeploysNeverOversubscribe) {
  ClusterSpec spec = SmallSpec(2);
  spec.memory_budget = guests::DaytimeUnikernel().memory * 2;  // 4 slots total.
  Cluster cl(&engine_, spec, std::make_unique<LeastLoaded>());
  Prefill(cl);

  int ok = 0;
  int rejected = 0;
  int done = 0;
  auto deploy = [&](int i) -> sim::Co<void> {
    auto h = co_await cl.Deploy(DaytimeConfig(lv::StrFormat("vm%d", i)), true);
    if (h.ok()) {
      ++ok;
    } else {
      EXPECT_EQ(h.error().code, lv::ErrorCode::kUnavailable);
      ++rejected;
    }
    ++done;
  };
  for (int i = 0; i < 7; ++i) {
    engine_.Spawn(deploy(i));
  }
  ASSERT_TRUE(sim::RunUntilCondition(engine_, [&] { return done == 7; },
                                     Duration::Seconds(60)));
  EXPECT_EQ(ok, 4);
  EXPECT_EQ(rejected, 3);
  EXPECT_EQ(cl.admission_rejects(), 3);
  EXPECT_EQ(cl.total_vms(), 4);
  for (const NodeView& v : cl.views()) {
    EXPECT_LE(v.memory_committed, v.memory_budget);
    EXPECT_EQ(v.vms, 2);
  }
}

// Same seed, same workload → identical placements and identical virtual time.
TEST_F(ClusterTest, SameSeedRunsAreIdentical) {
  auto run_once = [this](uint64_t seed) {
    sim::Engine engine(seed);
    ClusterSpec spec = SmallSpec(3);
    Cluster cl(&engine, spec, std::make_unique<LeastLoaded>());
    for (int n = 0; n < 3; ++n) {
      cl.host(n).AddShellFlavor(guests::DaytimeUnikernel().memory, true, 4);
      cl.host(n).PrefillShellPool();
    }
    std::vector<int> nodes(12, -1);
    int done = 0;
    auto deploy = [&](int i) -> sim::Co<void> {
      auto h = co_await cl.Deploy(DaytimeConfig(lv::StrFormat("vm%d", i)), true);
      LV_CHECK(h.ok());
      nodes[static_cast<size_t>(i)] = h->node;
      ++done;
    };
    for (int i = 0; i < 12; ++i) {
      engine.Spawn(deploy(i));
    }
    bool finished = sim::RunUntilCondition(engine, [&] { return done == 12; },
                                           Duration::Seconds(60));
    LV_CHECK(finished);
    return std::make_pair(nodes, engine.now().ns());
  };
  auto [nodes_a, ns_a] = run_once(7);
  auto [nodes_b, ns_b] = run_once(7);
  EXPECT_EQ(nodes_a, nodes_b);
  EXPECT_EQ(ns_a, ns_b);
}

// --- Self-healing under fault injection -------------------------------------

// Everything one chaos run produces that determinism and invariants are
// asserted over.
struct ChaosOutcome {
  std::vector<int> placements;  // node per fleet VM, -1 = deploy failed
  std::string fault_log;
  std::vector<double> recovery_ms;
  int64_t ok_deploys = 0;
  int64_t node_failures = 0;
  int64_t vms_lost = 0;
  int64_t vms_recovered = 0;
  int64_t vms_unrecovered = 0;
  int64_t invariant_failures = 0;
  int64_t total_vms = 0;
  int64_t drift_mem = 0;
  int64_t drift_vcpus = 0;
  int64_t end_ns = 0;
};

// Runs a fleet deploy over a small cluster with the health monitor on and a
// seeded random fault plan armed, then drives the engine until the plan has
// fully fired, every crashed node is written off, and the evacuation queue
// has drained.
ChaosOutcome RunChaos(uint64_t seed, int nodes, int vms, int events) {
  sim::Engine engine(seed);
  ClusterSpec spec;
  spec.num_nodes = nodes;
  spec.node = lightvm::HostSpec::Xeon4Core();
  spec.mechanisms = lightvm::Mechanisms::LightVm();
  Cluster cl(&engine, spec, std::make_unique<LeastLoaded>());
  for (int n = 0; n < nodes; ++n) {
    cl.host(n).AddShellFlavor(guests::DaytimeUnikernel().memory, true, 4);
    cl.host(n).PrefillShellPool();
  }
  cl.StartHealthMonitor();

  faults::FaultPlan plan =
      faults::FaultPlan::Random(seed, nodes, events, Duration::Millis(150));
  faults::FaultTargets targets;
  targets.crash_node = [&](int node) { cl.CrashNode(node); };
  targets.reboot_node = [&](int node) { cl.RequestReboot(node); };
  targets.restart_xenstore = [&](int node, Duration downtime) {
    if (cl.host(node).store() != nullptr) {
      cl.host(node).store()->InjectRestart(downtime);
    }
  };
  targets.stall_hotplug = [&](int node, Duration stall, int count) {
    cl.host(node).fault_hooks().hotplug_stall = stall;
    cl.host(node).fault_hooks().stall_next_hotplugs += count;
  };
  targets.partition_link = [&](int a, int b, Duration length) {
    cl.link(a, b)->Partition(length);
  };
  targets.fail_creates = [&](int node, int count) {
    cl.host(node).fault_hooks().fail_next_creates += count;
  };
  faults::FaultInjector injector(&engine, std::move(plan), std::move(targets));
  injector.Arm();

  ChaosOutcome out;
  out.placements.assign(static_cast<size_t>(vms), -1);
  int next = 0;
  int done = 0;
  auto worker = [&]() -> sim::Co<void> {
    while (next < vms) {
      int i = next++;
      auto h = co_await cl.Deploy(DaytimeConfig(lv::StrFormat("vm%d", i)), true);
      if (h.ok()) {
        out.placements[static_cast<size_t>(i)] = h->node;
      }
      ++done;
    }
  };
  for (int w = 0; w < 4; ++w) {
    engine.Spawn(worker());
  }
  LV_CHECK(sim::RunUntilCondition(engine, [&] { return done >= vms; },
                                  Duration::Seconds(7200)));
  // Quiesce: all faults fired, every crash detected (written off) AND
  // settled (the settle pass destroys the dead node's VMs over simulated
  // time, so counting live VMs before it finishes would see both the
  // originals and their replacements), every evacuation either recovered or
  // given up.
  auto quiet = [&] {
    if (injector.injected() != static_cast<int64_t>(injector.plan().size())) {
      return false;
    }
    for (int n = 0; n < nodes; ++n) {
      const lightvm::Host& h = cl.host(n);
      if (h.crashed() && (cl.node_alive(n) || !h.crash_settled())) {
        return false;  // dead but not yet detected, or still tearing down
      }
    }
    return cl.vms_lost() == cl.vms_recovered() + cl.vms_unrecovered();
  };
  LV_CHECK(sim::RunUntilCondition(engine, quiet, Duration::Seconds(7200)));

  for (int n : out.placements) {
    if (n >= 0) {
      ++out.ok_deploys;
    }
  }
  out.fault_log = injector.plan().ToString();
  out.recovery_ms = cl.recovery_ms();
  out.node_failures = cl.node_failures();
  out.vms_lost = cl.vms_lost();
  out.vms_recovered = cl.vms_recovered();
  out.vms_unrecovered = cl.vms_unrecovered();
  out.invariant_failures = cl.invariant_failures();
  out.total_vms = cl.total_vms();
  Cluster::Drift drift = cl.AdmissionDrift();
  out.drift_mem = drift.memory.count();
  out.drift_vcpus = drift.vcpus;
  out.end_ns = engine.now().ns();

  // Per-node leak invariants hold at quiescence whatever the plan did.
  for (int n = 0; n < nodes; ++n) {
    lv::Status ok = lightvm::VerifyNoLeakedResources(cl.host(n));
    EXPECT_TRUE(ok.ok()) << "seed " << seed << " node " << n << ": "
                         << ok.error().message << "\nplan:\n" << out.fault_log;
  }
  return out;
}

// Property sweep: whatever a random fault plan throws at the cluster, the
// control plane reconverges — every lost VM is either recovered or reported
// unrecovered, the admission ledger shows zero drift, the per-sweep
// invariant checks never fired, and the live VM count matches the books.
TEST_F(ClusterTest, RandomFaultPlansConvergeWithExactAccounting) {
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    ChaosOutcome out = RunChaos(seed, /*nodes=*/3, /*vms=*/30, /*events=*/6);
    EXPECT_EQ(out.invariant_failures, 0) << "seed " << seed << "\n" << out.fault_log;
    EXPECT_EQ(out.drift_mem, 0) << "seed " << seed;
    EXPECT_EQ(out.drift_vcpus, 0) << "seed " << seed;
    EXPECT_EQ(out.vms_lost, out.vms_recovered + out.vms_unrecovered)
        << "seed " << seed;
    EXPECT_EQ(out.total_vms, out.ok_deploys - out.vms_unrecovered)
        << "seed " << seed << "\n" << out.fault_log;
    EXPECT_GT(out.ok_deploys, 0) << "seed " << seed;
  }
}

// Same seed + same plan → byte-identical everything: fault log, placements,
// recovery latencies, final virtual time.
TEST_F(ClusterTest, ChaosRunsAreByteIdenticalAcrossRuns) {
  ChaosOutcome a = RunChaos(7, 3, 30, 8);
  ChaosOutcome b = RunChaos(7, 3, 30, 8);
  EXPECT_EQ(a.fault_log, b.fault_log);
  EXPECT_EQ(a.placements, b.placements);
  EXPECT_EQ(a.recovery_ms, b.recovery_ms);
  EXPECT_EQ(a.node_failures, b.node_failures);
  EXPECT_EQ(a.vms_lost, b.vms_lost);
  EXPECT_EQ(a.vms_recovered, b.vms_recovered);
  EXPECT_EQ(a.end_ns, b.end_ns);
}

// A node dying between placement and create completion: Deploy releases the
// reservation and re-places once on the survivors.
TEST_F(ClusterTest, DeployReplacesNodeThatDiesMidCreate) {
  Cluster cl(&engine_, SmallSpec(2), std::make_unique<LeastLoaded>());
  Prefill(cl);
  cl.StartHealthMonitor();

  // Crash node 0 (the tie-break pick for the first deploy) while its create
  // job is in flight.
  engine_.Schedule(Duration::Micros(200), [&] { cl.CrashNode(0); });
  auto h = Run(cl.Deploy(DaytimeConfig("replaced"), true));
  ASSERT_TRUE(h.ok()) << h.error().message;
  EXPECT_EQ(h->node, 1);
  EXPECT_EQ(cl.deploy_replacements(), 1);
  EXPECT_EQ(cl.host(1).num_vms(), 1);

  Cluster::Drift drift = cl.AdmissionDrift();
  EXPECT_EQ(drift.memory.count(), 0);
  EXPECT_EQ(drift.vcpus, 0);
  // Nothing was ever placed on node 0, so the write-off evacuates nothing.
  ASSERT_TRUE(sim::RunUntilCondition(engine_, [&] { return !cl.node_alive(0); },
                                     Duration::Seconds(60)));
  EXPECT_EQ(cl.vms_lost(), 0);
}

// The double failure: the re-placed attempt ALSO loses its node. Deploy must
// fail with a typed error, leaking no reservation on either node.
TEST_F(ClusterTest, DeployFailsTypedWhenReplacementNodeAlsoDies) {
  Cluster cl(&engine_, SmallSpec(2), std::make_unique<LeastLoaded>());
  Prefill(cl);
  cl.StartHealthMonitor();

  engine_.Schedule(Duration::Micros(200), [&] { cl.CrashNode(0); });
  // Crash node 1 as soon as the re-placed create reaches it.
  auto second_killer = [&]() -> sim::Co<void> {
    while (cl.host(1).node().jobs_active() == 0) {
      co_await engine_.Sleep(Duration::Micros(50));
    }
    cl.CrashNode(1);
  };
  engine_.Spawn(second_killer());

  auto h = Run(cl.Deploy(DaytimeConfig("doomed"), true));
  ASSERT_FALSE(h.ok());
  EXPECT_EQ(h.error().code, lv::ErrorCode::kUnavailable);
  EXPECT_EQ(h.error().message, "target node died during deploy");
  EXPECT_EQ(cl.deploy_replacements(), 1);
  EXPECT_EQ(cl.deploy_failures(), 1);
  Cluster::Drift drift = cl.AdmissionDrift();
  EXPECT_EQ(drift.memory.count(), 0);
  EXPECT_EQ(drift.vcpus, 0);
}

// --- Sharded topology: differential oracle vs the single-shard reference ----
//
// `shards == 1` runs the identical epoch algorithm inline, so it is the
// trusted reference; 2- and 4-shard runs on real threads must reproduce it
// byte for byte (PR 9's StorePolicy pattern, applied to the whole engine).

// Fingerprint of every deterministic metric: counters plus histogram
// count/min/max/buckets. Histogram `sum` and quantiles derived from it are
// excluded (floating-point addition order varies with the interleaving), as
// are gauges (toolstack.chaosd.pool_size is last-writer-wins by design).
std::string MetricsFingerprint() {
  metrics::Snapshot snap = metrics::Registry::Get().TakeSnapshot();
  std::string out;
  for (const auto& [name, value] : snap.counters) {
    out += lv::StrFormat("%s=%.0f\n", name.c_str(), value);
  }
  for (const auto& h : snap.histograms) {
    out += lv::StrFormat("%s count=%lld min=%.9g max=%.9g buckets=[",
                         h.name.c_str(), (long long)h.count, h.min, h.max);
    for (const auto& b : h.buckets) {
      out += lv::StrFormat("(%.9g,%.9g,%lld)", b.lo, b.hi, (long long)b.count);
    }
    out += "]\n";
  }
  return out;
}

struct ShardedOutcome {
  std::vector<int> placements;  // node per fleet VM, -1 = deploy failed
  int64_t end_ns = 0;
  uint64_t delivered = 0;
  uint64_t processed = 0;
  int64_t total_vms = 0;
  int64_t drift_mem = 0;
  int64_t drift_vcpus = 0;
  std::string metrics_text;
  std::string flight_json;
  std::string fault_log;
  std::vector<double> recovery_ms;
  int64_t node_failures = 0;
  int64_t vms_lost = 0;
  int64_t vms_recovered = 0;
  int64_t vms_unrecovered = 0;
  int64_t invariant_failures = 0;
};

// Shared scaffolding: per-node op-id streams and clean global observability
// state, a shard group with one domain per node plus the control domain.
class ShardedRun {
 public:
  ShardedRun(uint64_t seed, int shards, int nodes)
      : nodes_(nodes), group_(seed, nodes + 1, shards, Duration::Micros(50)) {
    metrics::Registry::Get().ResetAll();
    obs::FlightRecorder::Get().Reset();
    obs::SetOpIdPolicy(obs::OpIdPolicy::kPerNode, nodes);
    spec_.num_nodes = nodes;
    spec_.node = lightvm::HostSpec::Xeon4Core();
    spec_.mechanisms = lightvm::Mechanisms::LightVm();
  }
  ~ShardedRun() { obs::SetOpIdPolicy(obs::OpIdPolicy::kGlobal); }

  sim::ShardGroup& group() { return group_; }
  ClusterSpec& spec() { return spec_; }

  void Collect(Cluster& cl, ShardedOutcome* out) {
    out->end_ns = (group_.max_now() - lv::TimePoint()).ns();
    out->delivered = group_.messages_delivered();
    for (const sim::ShardStats& s : group_.shard_stats()) {
      out->processed += s.processed;
    }
    out->total_vms = cl.total_vms();
    Cluster::Drift drift = cl.AdmissionDrift();
    out->drift_mem = drift.memory.count();
    out->drift_vcpus = drift.vcpus;
    out->metrics_text = MetricsFingerprint();
    std::ostringstream flight;
    obs::FlightRecorder::Get().WriteJson(flight);
    out->flight_json = flight.str();
    out->recovery_ms = cl.recovery_ms();
    out->node_failures = cl.node_failures();
    out->vms_lost = cl.vms_lost();
    out->vms_recovered = cl.vms_recovered();
    out->vms_unrecovered = cl.vms_unrecovered();
    out->invariant_failures = cl.invariant_failures();
    // All shard threads are parked: host state is safe to audit from here.
    for (int n = 0; n < nodes_; ++n) {
      lv::Status ok = lightvm::VerifyNoLeakedResources(cl.host(n));
      EXPECT_TRUE(ok.ok()) << "node " << n << ": " << ok.error().message;
    }
  }

 private:
  int nodes_;
  sim::ShardGroup group_;
  ClusterSpec spec_;
};

ShardedOutcome RunShardedFleet(uint64_t seed, int shards, int nodes, int vms) {
  ShardedRun run(seed, shards, nodes);
  Cluster cl(&run.group(), run.spec(), std::make_unique<LeastLoaded>());
  ShardedOutcome out;
  out.placements.assign(static_cast<size_t>(vms), -1);
  int next = 0;
  int done = 0;
  auto worker = [&]() -> sim::Co<void> {
    while (next < vms) {
      int i = next++;
      auto h = co_await cl.Deploy(DaytimeConfig(lv::StrFormat("vm%d", i)), true);
      if (h.ok()) {
        out.placements[static_cast<size_t>(i)] = h->node;
      }
      ++done;
    }
  };
  for (int w = 0; w < 4; ++w) {
    cl.control_engine().Spawn(worker());
  }
  LV_CHECK(run.group().RunUntil([&] { return done >= vms; },
                                Duration::Seconds(7200)));
  run.group().RunToQuiescence(Duration::Seconds(60));
  run.Collect(cl, &out);
  return out;
}

TEST_F(ClusterTest, ShardedDeployRetireRoundTrip) {
  ShardedRun run(/*seed=*/5, /*shards=*/2, /*nodes=*/2);
  Cluster cl(&run.group(), run.spec(), std::make_unique<LeastLoaded>());
  ASSERT_TRUE(cl.sharded());
  std::vector<VmHandle> handles;
  bool done = false;
  auto script = [&]() -> sim::Co<void> {
    for (int i = 0; i < 4; ++i) {
      auto h = co_await cl.Deploy(DaytimeConfig(lv::StrFormat("vm%d", i)), true);
      LV_CHECK(h.ok());
      handles.push_back(*h);
    }
    done = true;
  };
  cl.control_engine().Spawn(script());
  ASSERT_TRUE(run.group().RunUntil([&] { return done; }, Duration::Seconds(60)));
  EXPECT_EQ(cl.total_vms(), 4);
  EXPECT_EQ(cl.vms_deployed(), 4);
  for (const NodeView& v : cl.views()) {
    EXPECT_EQ(v.vms, 2);  // least-loaded spreads 4 serial deploys 2/2
    EXPECT_EQ(v.memory_committed, guests::DaytimeUnikernel().memory * 2);
  }
  bool retired = false;
  auto teardown = [&]() -> sim::Co<void> {
    for (const VmHandle& h : handles) {
      lv::Status ok = co_await cl.Retire(h);
      LV_CHECK(ok.ok());
    }
    retired = true;
  };
  cl.control_engine().Spawn(teardown());
  ASSERT_TRUE(run.group().RunUntil([&] { return retired; }, Duration::Seconds(60)));
  run.group().RunToQuiescence(Duration::Seconds(10));
  EXPECT_EQ(cl.total_vms(), 0);
  for (const NodeView& v : cl.views()) {
    EXPECT_EQ(v.vms, 0);
    EXPECT_EQ(v.memory_committed, Bytes());
  }
  EXPECT_GT(run.group().messages_delivered(), 0u);
  for (int n = 0; n < 2; ++n) {
    EXPECT_TRUE(lightvm::VerifyNoLeakedResources(cl.host(n)).ok());
  }
}

TEST_F(ClusterTest, ShardedFleetMatchesSingleShardReference) {
  for (uint64_t seed : {3ull, 11ull}) {
    ShardedOutcome ref = RunShardedFleet(seed, /*shards=*/1, /*nodes=*/3,
                                         /*vms=*/24);
    EXPECT_GT(ref.delivered, 0u);
    EXPECT_EQ(ref.drift_mem, 0);
    EXPECT_EQ(ref.drift_vcpus, 0);
    for (int shards : {2, 4}) {
      ShardedOutcome got = RunShardedFleet(seed, shards, 3, 24);
      EXPECT_EQ(got.placements, ref.placements)
          << "seed=" << seed << " shards=" << shards;
      EXPECT_EQ(got.end_ns, ref.end_ns) << "seed=" << seed << " shards=" << shards;
      EXPECT_EQ(got.delivered, ref.delivered) << "seed=" << seed;
      EXPECT_EQ(got.processed, ref.processed) << "seed=" << seed;
      EXPECT_EQ(got.total_vms, ref.total_vms) << "seed=" << seed;
      EXPECT_EQ(got.metrics_text, ref.metrics_text)
          << "seed=" << seed << " shards=" << shards;
      EXPECT_EQ(got.flight_json, ref.flight_json)
          << "seed=" << seed << " shards=" << shards;
    }
  }
}

// Chaos on the sharded topology: random fault plans routed onto the engine
// (and flight ring) owning each event's target, with the health monitor and
// recovery loop running on the control shard.
ShardedOutcome RunShardedChaos(uint64_t seed, int shards, int nodes, int vms,
                               int events) {
  ShardedRun run(seed, shards, nodes);
  Cluster cl(&run.group(), run.spec(), std::make_unique<LeastLoaded>());
  cl.StartHealthMonitor();

  faults::FaultPlan plan =
      faults::FaultPlan::Random(seed, nodes, events, Duration::Millis(150));
  faults::FaultTargets targets;
  // Node-state sinks run on the node's own engine (see resolver below), so
  // they touch host state directly; crash goes through the node-side entry
  // point that also maintains the control mirrors.
  targets.crash_node = [&](int node) { cl.NodeSideCrash(node); };
  targets.reboot_node = [&](int node) { cl.RequestReboot(node); };
  targets.restart_xenstore = [&](int node, Duration downtime) {
    if (cl.host(node).store() != nullptr) {
      cl.host(node).store()->InjectRestart(downtime);
    }
  };
  targets.stall_hotplug = [&](int node, Duration stall, int count) {
    cl.host(node).fault_hooks().hotplug_stall = stall;
    cl.host(node).fault_hooks().stall_next_hotplugs += count;
  };
  targets.partition_link = [&](int a, int b, Duration length) {
    cl.link(a, b)->Partition(length);
  };
  targets.fail_creates = [&](int node, int count) {
    cl.host(node).fault_hooks().fail_next_creates += count;
  };
  faults::FaultInjector injector(&cl.control_engine(), std::move(plan),
                                 std::move(targets));
  injector.set_engine_resolver([&](const faults::FaultEvent& ev) {
    switch (ev.kind) {
      case faults::FaultKind::kNodeCrash:
      case faults::FaultKind::kXsRestart:
      case faults::FaultKind::kHotplugStall:
      case faults::FaultKind::kCreateFault:
        return &run.group().domain_engine(ev.node);
      case faults::FaultKind::kNodeReboot:
      case faults::FaultKind::kLinkPartition:
        return &cl.control_engine();
    }
    return &cl.control_engine();
  });
  injector.set_ring_resolver([&](const faults::FaultEvent& ev) {
    switch (ev.kind) {
      case faults::FaultKind::kNodeReboot:
      case faults::FaultKind::kLinkPartition:
        return cl.control_domain();  // sink runs on the control shard
      default:
        return ev.node;
    }
  });
  injector.Arm();

  ShardedOutcome out;
  out.placements.assign(static_cast<size_t>(vms), -1);
  int next = 0;
  int done = 0;
  auto worker = [&]() -> sim::Co<void> {
    while (next < vms) {
      int i = next++;
      auto h = co_await cl.Deploy(DaytimeConfig(lv::StrFormat("vm%d", i)), true);
      if (h.ok()) {
        out.placements[static_cast<size_t>(i)] = h->node;
      }
      ++done;
    }
  };
  for (int w = 0; w < 4; ++w) {
    cl.control_engine().Spawn(worker());
  }
  LV_CHECK(run.group().RunUntil([&] { return done >= vms; },
                                Duration::Seconds(7200)));
  // Quiesce exactly like the single-engine chaos harness. The predicate is
  // evaluated by the coordinator while every shard is parked at a barrier,
  // so reading host state across domains is race-free here.
  auto quiet = [&] {
    if (injector.injected() != static_cast<int64_t>(injector.plan().size())) {
      return false;
    }
    for (int n = 0; n < nodes; ++n) {
      const lightvm::Host& h = cl.host(n);
      if (h.crashed() && (cl.node_alive(n) || !h.crash_settled())) {
        return false;
      }
    }
    return cl.vms_lost() == cl.vms_recovered() + cl.vms_unrecovered();
  };
  LV_CHECK(run.group().RunUntil(quiet, Duration::Seconds(7200)));
  // Let in-flight mirror updates and reboot waiters drain (bounded: the
  // monitor loops forever by design).
  run.group().RunUntil([] { return false; }, Duration::Seconds(2));

  for (int n : out.placements) {
    if (n >= 0) {
      ++out.total_vms;  // reused below; reset by Collect
    }
  }
  int64_t ok_deploys = out.total_vms;
  out.total_vms = 0;
  run.Collect(cl, &out);
  std::string log;
  for (const std::string& line : injector.log()) {
    if (!line.empty()) {
      log += line + "\n";
    }
  }
  out.fault_log = log;
  EXPECT_EQ(out.vms_lost, out.vms_recovered + out.vms_unrecovered)
      << "seed " << seed;
  EXPECT_EQ(out.total_vms, ok_deploys - out.vms_unrecovered)
      << "seed " << seed << "\n" << out.fault_log;
  EXPECT_EQ(out.invariant_failures, 0) << "seed " << seed;
  EXPECT_EQ(out.drift_mem, 0) << "seed " << seed;
  EXPECT_EQ(out.drift_vcpus, 0) << "seed " << seed;
  return out;
}

TEST_F(ClusterTest, ShardedChaosMatchesSingleShardReference) {
  for (uint64_t seed : {2ull, 9ull, 23ull}) {
    ShardedOutcome ref = RunShardedChaos(seed, /*shards=*/1, /*nodes=*/3,
                                         /*vms=*/20, /*events=*/6);
    for (int shards : {2, 4}) {
      ShardedOutcome got = RunShardedChaos(seed, shards, 3, 20, 6);
      EXPECT_EQ(got.fault_log, ref.fault_log)
          << "seed=" << seed << " shards=" << shards;
      EXPECT_EQ(got.placements, ref.placements)
          << "seed=" << seed << " shards=" << shards;
      EXPECT_EQ(got.recovery_ms, ref.recovery_ms) << "seed=" << seed;
      EXPECT_EQ(got.node_failures, ref.node_failures) << "seed=" << seed;
      EXPECT_EQ(got.vms_lost, ref.vms_lost) << "seed=" << seed;
      EXPECT_EQ(got.vms_recovered, ref.vms_recovered) << "seed=" << seed;
      EXPECT_EQ(got.vms_unrecovered, ref.vms_unrecovered) << "seed=" << seed;
      EXPECT_EQ(got.end_ns, ref.end_ns) << "seed=" << seed << " shards=" << shards;
      EXPECT_EQ(got.metrics_text, ref.metrics_text)
          << "seed=" << seed << " shards=" << shards;
      EXPECT_EQ(got.flight_json, ref.flight_json)
          << "seed=" << seed << " shards=" << shards;
    }
  }
}

}  // namespace
}  // namespace cluster
