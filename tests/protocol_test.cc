// Protocol-level integration tests: verify the *mechanism* claims of the
// paper by counting operations, not just timing them.
//
//  * Fig. 7a: creating a VM through the XenStore requires tens of store
//    round-trips; "a single read or write triggers at least two, and most
//    often four, software interrupts".
//  * Fig. 7b: the noxs path replaces all of that with an ioctl plus a
//    handful of hypercalls, and the store is never contacted.
//  * §4.2: concurrent store clients serialize through the single daemon
//    loop and their transactions conflict rather than corrupt.
#include <gtest/gtest.h>

#include "src/base/strings.h"
#include "src/core/host.h"
#include "src/sim/run.h"

namespace lightvm {
namespace {

using lv::Duration;

toolstack::VmConfig Daytime(const std::string& name) {
  toolstack::VmConfig config;
  config.name = name;
  config.image = guests::DaytimeUnikernel();
  return config;
}

class ProtocolTest : public ::testing::Test {
 public:
  template <typename T>
  T Run(sim::Co<T> co) {
    return sim::RunToCompletion(engine_, std::move(co));
  }
  sim::Engine engine_;
};

TEST_F(ProtocolTest, XenstoreCreateCostsTensOfStoreOps) {
  Host host(&engine_, HostSpec::Xeon4Core(), Mechanisms::Xl());
  int64_t ops_before = host.store()->stats().ops;
  auto domid = Run(host.CreateAndBoot(Daytime("vm0")));
  ASSERT_TRUE(domid.ok());
  int64_t ops = host.store()->stats().ops - ops_before;
  // "the VM creation process alone can require interaction with over 30
  // XenStore entries" — records + device handshake + guest enumeration.
  EXPECT_GE(ops, 30);
  EXPECT_LE(ops, 200);  // And not unboundedly many.
}

TEST_F(ProtocolTest, NoxsCreateNeverTouchesAStore) {
  Host host(&engine_, HostSpec::Xeon4Core(), Mechanisms::ChaosNoxs());
  ASSERT_EQ(host.store(), nullptr);  // No xenstored process exists at all.
  int64_t hypercalls_before = host.hv().stats().hypercalls;
  auto domid = Run(host.CreateAndBoot(Daytime("vm0")));
  ASSERT_TRUE(domid.ok());
  int64_t hypercalls = host.hv().stats().hypercalls - hypercalls_before;
  // Fig. 7b: domain setup + device-page writes + guest device-page read.
  EXPECT_GE(hypercalls, 6);
  EXPECT_LE(hypercalls, 30);
  EXPECT_GE(host.hv().stats().device_page_writes, 2);  // net + sysctl
  EXPECT_GE(host.hv().stats().device_page_reads, 1);   // guest enumeration
}

TEST_F(ProtocolTest, NoxsUsesFarFewerControlOperationsThanXenstore) {
  Host xs_host(&engine_, HostSpec::Xeon4Core(), Mechanisms::ChaosXs());
  Host noxs_host(&engine_, HostSpec::Xeon4Core(), Mechanisms::ChaosNoxs());
  int64_t xs_hypercalls = xs_host.hv().stats().hypercalls;
  int64_t noxs_hypercalls = noxs_host.hv().stats().hypercalls;
  ASSERT_TRUE(Run(xs_host.CreateAndBoot(Daytime("a"))).ok());
  ASSERT_TRUE(Run(noxs_host.CreateAndBoot(Daytime("a"))).ok());
  // Every store op costs >= 2 softirqs + domain changes; with ~40+ ops the
  // XS path crosses domains an order of magnitude more often. We compare
  // total control-plane transitions: store ops * 4 interrupts vs hypercalls.
  int64_t xs_transitions = xs_host.store()->stats().ops * 4 +
                           (xs_host.hv().stats().hypercalls - xs_hypercalls);
  int64_t noxs_transitions = noxs_host.hv().stats().hypercalls - noxs_hypercalls;
  EXPECT_GT(xs_transitions, noxs_transitions * 8);
}

TEST_F(ProtocolTest, WatchTrafficGrowsWithPopulationUnderXenstore) {
  Host host(&engine_, HostSpec::Xeon4Core(), Mechanisms::ChaosXs());
  // Create #1 absorbs one-time setup (backend watcher registration events),
  // so compare the steady-state per-create deltas of #2 and #31.
  ASSERT_TRUE(Run(host.CreateAndBoot(Daytime("w0"))).ok());
  int64_t before_low = host.store()->stats().watch_events;
  ASSERT_TRUE(Run(host.CreateAndBoot(Daytime("w1"))).ok());
  int64_t events_low = host.store()->stats().watch_events - before_low;
  for (int i = 2; i < 30; ++i) {
    ASSERT_TRUE(Run(host.CreateAndBoot(Daytime(lv::StrFormat("w%d", i)))).ok());
  }
  int64_t before = host.store()->stats().watch_events;
  ASSERT_TRUE(Run(host.CreateAndBoot(Daytime("w-last"))).ok());
  int64_t events_high = host.store()->stats().watch_events - before;
  // Each VM leaves persistent watches, so a late create fires at least as
  // many watch events as an early one.
  EXPECT_GE(events_high, events_low);
  EXPECT_GT(host.store()->store().num_watches(), 60);  // ~2+/VM outstanding.
}

TEST_F(ProtocolTest, ConcurrentCreatesSerializeAndAllSucceed) {
  Host host(&engine_, HostSpec::Xeon4Core(), Mechanisms::ChaosXs());
  // Launch 8 creates at the same instant; the store daemon serializes them.
  std::vector<lv::Result<hv::DomainId>> results;
  results.reserve(8);
  int done = 0;
  for (int i = 0; i < 8; ++i) {
    engine_.Spawn([](Host& h, int i, std::vector<lv::Result<hv::DomainId>>& out,
                     int& done) -> sim::Co<void> {
      // Named local: temporaries inside co_await miscompile on GCC 12.
      toolstack::VmConfig config{lv::StrFormat("conc%d", i), guests::DaytimeUnikernel(),
                                 1};
      auto domid = co_await h.CreateAndBoot(std::move(config));
      out.push_back(std::move(domid));
      ++done;
    }(host, i, results, done));
  }
  ASSERT_TRUE(sim::RunUntilCondition(engine_, [&] { return done == 8; },
                                     Duration::Seconds(60)));
  for (const auto& r : results) {
    EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.error().message);
  }
  EXPECT_EQ(host.num_vms(), 8);
  // Unique ids despite full concurrency.
  std::set<hv::DomainId> ids;
  for (const auto& r : results) {
    ids.insert(*r);
  }
  EXPECT_EQ(ids.size(), 8u);
}

TEST_F(ProtocolTest, ConcurrentDuplicateNamesAdmitExactlyOne) {
  Host host(&engine_, HostSpec::Xeon4Core(), Mechanisms::Xl());
  int done = 0;
  int succeeded = 0;
  int already_exists = 0;
  for (int i = 0; i < 4; ++i) {
    engine_.Spawn([](Host& h, int& done, int& ok, int& dup) -> sim::Co<void> {
      toolstack::VmConfig config{"same-name", guests::DaytimeUnikernel(), 1};
      auto domid = co_await h.CreateVm(std::move(config));
      if (domid.ok()) {
        ++ok;
      } else if (domid.code() == lv::ErrorCode::kAlreadyExists) {
        ++dup;
      }
      ++done;
    }(host, done, succeeded, already_exists));
  }
  ASSERT_TRUE(sim::RunUntilCondition(engine_, [&] { return done == 4; },
                                     Duration::Seconds(60)));
  EXPECT_EQ(succeeded, 1);
  EXPECT_EQ(already_exists, 3);
  EXPECT_EQ(host.num_vms(), 1);
}

TEST_F(ProtocolTest, SuspendHandshakeTakesOneIoctlUnderNoxs) {
  Host host(&engine_, HostSpec::Xeon4Core(), Mechanisms::ChaosNoxs());
  auto domid = Run(host.CreateAndBoot(Daytime("s0")));
  ASSERT_TRUE(domid.ok());
  int64_t notifications = host.hv().event_channels().notifications_sent();
  auto snap = Run(host.SaveVm(*domid));
  ASSERT_TRUE(snap.ok());
  // Suspend = request notify + guest ack notify over the sysctl channel.
  int64_t delta = host.hv().event_channels().notifications_sent() - notifications;
  EXPECT_GE(delta, 2);
  EXPECT_LE(delta, 6);
}

}  // namespace
}  // namespace lightvm
