// Personal firewalls at the mobile edge (paper §7.1): one ClickOS firewall
// VM per user, booted in ~10 ms, and migrated between edge hosts as the
// user moves between cells.
//
//   $ ./build/examples/firewall_fleet
#include <cstdio>

#include "src/base/strings.h"
#include "src/core/host.h"
#include "src/guests/apps.h"
#include "src/sim/run.h"

int main() {
  sim::Engine engine;
  lightvm::Host cell_a(&engine, lightvm::HostSpec::Xeon14Core(),
                       lightvm::Mechanisms::LightVm());
  lightvm::Host cell_b(&engine, lightvm::HostSpec::Xeon14Core(),
                       lightvm::Mechanisms::LightVm());
  for (lightvm::Host* cell : {&cell_a, &cell_b}) {
    cell->AddShellFlavor(guests::ClickOsFirewall().memory, true, 8);
    cell->PrefillShellPool();
  }

  // 100 users enter cell A; each gets a personal firewall VM.
  std::printf("booting 100 personal firewalls in cell A...\n");
  std::vector<hv::DomainId> firewalls;
  lv::TimePoint t0 = engine.now();
  for (int user = 0; user < 100; ++user) {
    toolstack::VmConfig config;
    config.name = lv::StrFormat("fw-user%d", user);
    config.image = guests::ClickOsFirewall();
    auto domid = sim::RunToCompletion(engine, cell_a.CreateAndBoot(config));
    if (!domid.ok()) {
      return 1;
    }
    firewalls.push_back(*domid);
  }
  std::printf("  100 firewalls up in %s total (%s avg each)\n",
              (engine.now() - t0).ToString().c_str(),
              ((engine.now() - t0) / 100.0).ToString().c_str());

  // Traffic flows through user 0's firewall.
  guests::FirewallApp fw(cell_a.guest(firewalls[0]), &cell_a.netback(),
                         &cell_a.network_switch(), /*uplink=*/"");
  engine.Spawn([](lightvm::Host& cell, hv::DomainId domid) -> sim::Co<void> {
    sim::ExecCtx ctx = cell.Dom0Ctx();
    for (int pkt = 0; pkt < 1000; ++pkt) {
      xnet::Packet p;
      p.dst = xdev::VifName(domid, 0);
      p.flow_id = 0;
      co_await cell.network_switch().Forward(ctx, p);
      co_await cell.engine().Sleep(lv::Duration::Micros(1200));  // ~10 Mbps
    }
  }(cell_a, firewalls[0]));
  engine.RunFor(lv::Duration::Seconds(2));
  std::printf("user 0's firewall processed %lld packets (%s)\n",
              (long long)fw.packets_processed(), fw.bytes_processed().ToString().c_str());

  // User 0 moves to cell B: migrate their firewall over the backhaul.
  xnet::Link backhaul(&engine, /*gbps=*/1.0, lv::Duration::Millis(10));
  t0 = engine.now();
  lv::Status migrated =
      sim::RunToCompletion(engine, cell_a.MigrateVm(firewalls[0], &cell_b, &backhaul));
  if (!migrated.ok()) {
    std::fprintf(stderr, "migration failed: %s\n", migrated.error().message.c_str());
    return 1;
  }
  std::printf("user 0's firewall migrated to cell B in %s over a 1 Gbps / 10 ms link\n",
              (engine.now() - t0).ToString().c_str());
  std::printf("cell A now runs %lld firewalls, cell B %lld\n", (long long)cell_a.num_vms(),
              (long long)cell_b.num_vms());
  return 0;
}
