// High-density TLS termination (paper §7.3) — including building the Tinyx
// image with the actual Tinyx build system (§3.2) before booting it.
//
//   $ ./build/examples/tls_termination
#include <cstdio>

#include "src/base/strings.h"
#include "src/core/host.h"
#include "src/guests/apps.h"
#include "src/sim/run.h"
#include "src/tinyx/builder.h"

int main() {
  // --- Build a Tinyx image around the TLS proxy -----------------------------
  tinyx::TinyxBuilder builder(tinyx::PackageDb::DebianBase());
  tinyx::BuildConfig build;
  build.app = "tls-proxy";
  build.kernel_options_to_test = {"IPV6", "NETFILTER", "SOUND", "TMPFS"};
  auto built = builder.Build(build);
  if (!built.ok()) {
    std::fprintf(stderr, "tinyx build failed: %s\n", built.error().message.c_str());
    return 1;
  }
  std::printf("Tinyx build for '%s':\n", built->app.c_str());
  std::printf("  packages: ");
  for (const std::string& pkg : built->packages) {
    std::printf("%s ", pkg.c_str());
  }
  std::printf("\n  blacklisted: ");
  for (const std::string& pkg : built->blacklisted) {
    std::printf("%s ", pkg.c_str());
  }
  std::printf("\n  kernel %s + rootfs %s = image %s, est. memory %s\n",
              built->kernel_size.ToString().c_str(), built->rootfs_size.ToString().c_str(),
              built->image_size.ToString().c_str(),
              built->memory_estimate.ToString().c_str());
  std::printf("  %d boot tests run; options disabled by testing: ",
              built->boot_tests_run);
  for (const std::string& opt : built->options_disabled_by_test) {
    std::printf("%s ", opt.c_str());
  }
  std::printf("\n\n");

  // --- Boot 50 termination endpoints of each flavor and race them ------------
  sim::Engine engine;
  struct Row {
    const char* label;
    guests::GuestImage image;
  };
  Row rows[] = {
      {"tinyx (built above)", built->ToGuestImage()},
      {"axtls/lwip unikernel", guests::TlsUnikernel()},
  };
  for (const Row& row : rows) {
    lightvm::Host host(&engine, lightvm::HostSpec::Xeon14Core(),
                       lightvm::Mechanisms::LightVm());
    std::vector<std::unique_ptr<guests::TlsServer>> servers;
    for (int i = 0; i < 50; ++i) {
      toolstack::VmConfig config;
      config.name = lv::StrFormat("tls%d", i);
      config.image = row.image;
      auto domid = sim::RunToCompletion(engine, host.CreateAndBoot(config));
      if (!domid.ok()) {
        return 1;
      }
      servers.push_back(std::make_unique<guests::TlsServer>(host.guest(*domid)));
    }
    // Each endpoint serves handshakes back-to-back for one second.
    bool stop = false;
    for (auto& server : servers) {
      engine.Spawn([](guests::TlsServer* s, bool* stop) -> sim::Co<void> {
        while (!*stop) {
          co_await s->HandleRequest();
        }
      }(server.get(), &stop));
    }
    engine.RunFor(lv::Duration::Seconds(1));
    stop = true;
    engine.RunFor(lv::Duration::Seconds(1));
    int64_t total = 0;
    for (const auto& server : servers) {
      total += server->requests_served();
    }
    std::printf("%-22s 50 endpoints served ~%lld handshakes/s\n", row.label,
                (long long)total);
  }
  std::printf("\nThe Linux-stack Tinyx proxies sit near bare-metal throughput; the\n"
              "lwip unikernel reaches about a fifth of it (paper §7.3).\n");
  return 0;
}
