// Quickstart: boot a unikernel VM in milliseconds with LightVM, checkpoint
// it, restore it, and compare against stock Xen's xl toolstack.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "src/base/strings.h"
#include "src/core/host.h"
#include "src/sim/run.h"

int main() {
  sim::Engine engine;

  // A LightVM host: chaos toolstack + noxs (no XenStore) + split toolstack.
  lightvm::Host host(&engine, lightvm::HostSpec::Xeon4Core(),
                     lightvm::Mechanisms::LightVm());
  // Keep 4 pre-created VM shells pooled for the daytime unikernel's flavor.
  host.AddShellFlavor(guests::DaytimeUnikernel().memory, /*wants_net=*/true, 4);
  host.PrefillShellPool();

  // Create and boot the paper's daytime unikernel (480 KB image, 3.6 MB RAM).
  toolstack::VmConfig config;
  config.name = "hello-lightvm";
  config.image = guests::DaytimeUnikernel();

  lv::TimePoint t0 = engine.now();
  auto domid = sim::RunToCompletion(engine, host.CreateAndBoot(config));
  if (!domid.ok()) {
    std::fprintf(stderr, "create failed: %s\n", domid.error().message.c_str());
    return 1;
  }
  std::printf("booted '%s' as dom%lld in %s\n", config.name.c_str(), (long long)*domid,
              (engine.now() - t0).ToString().c_str());
  std::printf("  memory in use: %s (Dom0 + guest)\n",
              host.MemoryUsed().ToString().c_str());

  // Checkpoint it (sysctl suspend + memory stream to the ramdisk) ...
  t0 = engine.now();
  auto snapshot = sim::RunToCompletion(engine, host.SaveVm(*domid));
  std::printf("saved in %s\n", (engine.now() - t0).ToString().c_str());

  // ... and bring it back.
  t0 = engine.now();
  auto restored = sim::RunToCompletion(engine, host.RestoreVm(*snapshot));
  std::printf("restored as dom%lld in %s\n", (long long)*restored,
              (engine.now() - t0).ToString().c_str());

  // For contrast: the same VM under stock Xen's xl toolstack.
  lightvm::Host stock(&engine, lightvm::HostSpec::Xeon4Core(), lightvm::Mechanisms::Xl());
  t0 = engine.now();
  auto xl_domid = sim::RunToCompletion(engine, stock.CreateAndBoot(config));
  std::printf("the same VM under xl: %s (config parsing, ~25 XenStore records, "
              "bash hotplug)\n",
              (engine.now() - t0).ToString().c_str());
  (void)xl_domid;
  return 0;
}
