// chaos — the command-line tool (paper §5.1: "we begin by replacing libxl
// and the corresponding xl command with a streamlined, thin library and
// command called libchaos and chaos").
//
// A scriptable CLI over a LightVM host. Commands are read from argv (one
// command per argument) or from stdin, one per line:
//
//   create <name> <image>     boot a VM from a registry image
//   cfg <file-or-inline>      boot a VM from an xl.cfg-style config string
//   list                      list running VMs
//   save <name>               checkpoint + tear down
//   restore <name>            bring a checkpoint back
//   destroy <name>            destroy a VM
//   mem                       host memory in use
//   stats                     dump the live metrics registry (counters,
//                             gauges, latency histograms)
//   quit
//
//   $ ./build/examples/chaos_cli "create web0 daytime" list "save web0"
//   $ ./build/examples/chaos_cli "restore web0" list "destroy web0" mem
//
// Pass --trace-out=<file> (anywhere in argv) to record a control-plane
// trace of the whole session and write it as Chrome trace_event JSON —
// load it in chrome://tracing or https://ui.perfetto.dev:
//
//   $ ./build/examples/chaos_cli --trace-out=trace.json "create web0 daytime" quit
//
// Pass --metrics-out=<file> to write the final metrics-registry snapshot
// as JSON when the session ends:
//
//   $ ./build/examples/chaos_cli --metrics-out=metrics.json "create web0 daytime" quit
#include <cstdio>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/base/strings.h"
#include "src/core/host.h"
#include "src/metrics/export.h"
#include "src/metrics/metrics.h"
#include "src/sim/run.h"
#include "src/toolstack/config.h"
#include "src/trace/export.h"
#include "src/trace/trace.h"

namespace {

class ChaosCli {
 public:
  ChaosCli()
      : host_(&engine_, lightvm::HostSpec::Xeon4Core(), lightvm::Mechanisms::LightVm()) {}

  // Executes one command line; returns false on "quit".
  bool Execute(const std::string& line) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd.empty()) {
      return true;
    }
    if (cmd == "quit" || cmd == "exit") {
      return false;
    }
    if (cmd == "create") {
      std::string name;
      std::string image;
      in >> name >> image;
      Create(name, image);
    } else if (cmd == "cfg") {
      std::string rest;
      std::getline(in, rest);
      CreateFromConfig(rest);
    } else if (cmd == "list") {
      List();
    } else if (cmd == "save") {
      std::string name;
      in >> name;
      Save(name);
    } else if (cmd == "restore") {
      std::string name;
      in >> name;
      Restore(name);
    } else if (cmd == "destroy") {
      std::string name;
      in >> name;
      Destroy(name);
    } else if (cmd == "mem") {
      std::printf("memory in use: %s\n", host_.MemoryUsed().ToString().c_str());
    } else if (cmd == "stats") {
      metrics::WriteText(metrics::Registry::Get(), std::cout);
    } else {
      std::printf("unknown command: %s\n", cmd.c_str());
    }
    return true;
  }

 private:
  void Create(const std::string& name, const std::string& image_name) {
    auto image = toolstack::ImageByName(image_name);
    if (!image.ok()) {
      std::printf("error: %s\n", image.error().message.c_str());
      return;
    }
    toolstack::VmConfig config;
    config.name = name;
    config.image = *image;
    Boot(config);
  }

  void CreateFromConfig(const std::string& inline_cfg) {
    // Accept "key=value;key=value" inline shorthand for scripting.
    std::string text = inline_cfg;
    for (char& c : text) {
      if (c == ';') {
        c = '\n';
      }
    }
    auto config = toolstack::ParseVmConfig(text);
    if (!config.ok()) {
      std::printf("error: %s\n", config.error().message.c_str());
      return;
    }
    Boot(*config);
  }

  void Boot(const toolstack::VmConfig& config) {
    lv::TimePoint t0 = engine_.now();
    auto domid = sim::RunToCompletion(engine_, host_.CreateAndBoot(config));
    if (!domid.ok()) {
      std::printf("error: %s\n", domid.error().message.c_str());
      return;
    }
    by_name_[config.name] = *domid;
    std::printf("created dom%lld '%s' (%s) in %s\n", (long long)*domid,
                config.name.c_str(), config.image.name.c_str(),
                (engine_.now() - t0).ToString().c_str());
  }

  void List() {
    std::printf("%-8s %-16s %-12s %s\n", "domid", "name", "image", "memory");
    for (const auto& [name, domid] : by_name_) {
      const toolstack::VmConfig* config = host_.toolstack().config_of(domid);
      if (config == nullptr) {
        continue;
      }
      std::printf("%-8lld %-16s %-12s %s\n", (long long)domid, name.c_str(),
                  config->image.name.c_str(), config->image.memory.ToString().c_str());
    }
  }

  void Save(const std::string& name) {
    auto it = by_name_.find(name);
    if (it == by_name_.end()) {
      std::printf("error: no VM named '%s'\n", name.c_str());
      return;
    }
    lv::TimePoint t0 = engine_.now();
    auto snap = sim::RunToCompletion(engine_, host_.SaveVm(it->second));
    if (!snap.ok()) {
      std::printf("error: %s\n", snap.error().message.c_str());
      return;
    }
    snapshots_[name] = *snap;
    by_name_.erase(it);
    std::printf("saved '%s' in %s\n", name.c_str(),
                (engine_.now() - t0).ToString().c_str());
  }

  void Restore(const std::string& name) {
    auto it = snapshots_.find(name);
    if (it == snapshots_.end()) {
      std::printf("error: no checkpoint named '%s'\n", name.c_str());
      return;
    }
    lv::TimePoint t0 = engine_.now();
    auto domid = sim::RunToCompletion(engine_, host_.RestoreVm(it->second));
    if (!domid.ok()) {
      std::printf("error: %s\n", domid.error().message.c_str());
      return;
    }
    by_name_[name] = *domid;
    snapshots_.erase(it);
    std::printf("restored '%s' as dom%lld in %s\n", name.c_str(), (long long)*domid,
                (engine_.now() - t0).ToString().c_str());
  }

  void Destroy(const std::string& name) {
    auto it = by_name_.find(name);
    if (it == by_name_.end()) {
      std::printf("error: no VM named '%s'\n", name.c_str());
      return;
    }
    lv::Status s = sim::RunToCompletion(engine_, host_.DestroyVm(it->second));
    if (!s.ok()) {
      std::printf("error: %s\n", s.error().message.c_str());
      return;
    }
    by_name_.erase(it);
    std::printf("destroyed '%s'\n", name.c_str());
  }

  sim::Engine engine_;
  lightvm::Host host_;
  std::map<std::string, hv::DomainId> by_name_;
  std::map<std::string, toolstack::Snapshot> snapshots_;
};

}  // namespace

int main(int argc, char** argv) {
  std::string trace_out;
  std::string metrics_out;
  std::vector<std::string> commands;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--trace-out=", 0) == 0) {
      trace_out = arg.substr(std::string("--trace-out=").size());
      if (trace_out.empty()) {
        std::printf("error: --trace-out needs a file name\n");
        return 1;
      }
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      metrics_out = arg.substr(std::string("--metrics-out=").size());
      if (metrics_out.empty()) {
        std::printf("error: --metrics-out needs a file name\n");
        return 1;
      }
    } else {
      commands.push_back(std::move(arg));
    }
  }
  ChaosCli cli;
  if (!trace_out.empty()) {
    trace::Tracer::Get().Enable();
  }
  if (!commands.empty()) {
    for (const std::string& command : commands) {
      std::printf("chaos> %s\n", command.c_str());
      if (!cli.Execute(command)) {
        break;
      }
    }
  } else {
    std::string line;
    std::printf("chaos> ");
    while (std::getline(std::cin, line)) {
      if (!cli.Execute(line)) {
        break;
      }
      std::printf("chaos> ");
    }
  }
  if (!trace_out.empty()) {
    lv::Status written = trace::WriteChromeTraceFile(trace::Tracer::Get(), trace_out);
    if (!written.ok()) {
      std::printf("error writing trace: %s\n", written.error().message.c_str());
      return 1;
    }
    std::printf("wrote trace to %s (open in chrome://tracing or ui.perfetto.dev)\n",
                trace_out.c_str());
  }
  if (!metrics_out.empty()) {
    lv::Status written = metrics::WriteJsonFile(metrics::Registry::Get(), metrics_out);
    if (!written.ok()) {
      std::printf("error writing metrics: %s\n", written.error().message.c_str());
      return 1;
    }
    std::printf("wrote metrics to %s\n", metrics_out.c_str());
  }
  return 0;
}
