// Lightweight compute service (paper §7.4): an Amazon-Lambda-like daemon
// that spawns a Minipython unikernel per request, runs the submitted
// computation, and destroys the VM when it finishes.
//
//   $ ./build/examples/compute_service
#include <cstdio>

#include "src/base/stats.h"
#include "src/base/strings.h"
#include "src/core/host.h"
#include "src/sim/run.h"

namespace {

struct Request {
  lv::Duration compute;  // CPU time of the submitted Python program
  lv::TimePoint arrival;
  lv::TimePoint done;
  bool completed = false;
};

// The Dom0 daemon: receives a compute request, spawns a VM, runs the
// program, tears the VM down.
sim::Co<void> RunJob(sim::Engine* engine, lightvm::Host* host, int id, Request* req) {
  req->arrival = engine->now();
  toolstack::VmConfig config;
  config.name = lv::StrFormat("lambda%d", id);
  config.image = guests::MinipythonUnikernel();
  auto domid = co_await host->CreateVm(config);
  if (!domid.ok()) {
    co_return;
  }
  guests::Guest* guest = host->guest(*domid);
  co_await guest->WaitBooted();
  co_await guest->Compute(req->compute);
  (void)co_await host->DestroyVm(*domid);
  req->done = engine->now();
  req->completed = true;
}

}  // namespace

int main() {
  sim::Engine engine;
  lightvm::Host host(&engine, lightvm::HostSpec::Xeon4Core(),
                     lightvm::Mechanisms::LightVm());
  host.AddShellFlavor(guests::MinipythonUnikernel().memory, true, 8);
  host.PrefillShellPool();

  // 50 requests arrive every 300 ms; each computes an approximation of e
  // for ~0.8 s. Three guest cores handle the load with a little headroom.
  constexpr int kJobs = 50;
  std::vector<Request> requests(kJobs);
  for (int i = 0; i < kJobs; ++i) {
    requests[static_cast<size_t>(i)].compute = lv::Duration::Millis(800);
    engine.Schedule(lv::Duration::Millis(300) * static_cast<double>(i),
                    [&engine, &host, i, &requests] {
                      engine.Spawn(
                          RunJob(&engine, &host, i, &requests[static_cast<size_t>(i)]));
                    });
  }
  engine.RunFor(lv::Duration::Seconds(40));

  lv::Samples service_ms;
  int completed = 0;
  for (const Request& req : requests) {
    if (req.completed) {
      service_ms.AddDuration(req.done - req.arrival);
      ++completed;
    }
  }
  std::printf("compute service: %d/%d jobs completed\n", completed, kJobs);
  std::printf("  per-job service time: median %.0f ms, p90 %.0f ms (0.8 s of compute "
              "+ ~2 ms of VM lifecycle)\n",
              service_ms.Median(), service_ms.Quantile(0.9));
  std::printf("  VMs left running: %lld (all destroyed on completion)\n",
              (long long)host.num_vms());
  return 0;
}
