// Just-in-time service instantiation (paper §7.2): the first packet from a
// new client boots a fresh VM; the VM answers the client's ping. With
// millisecond boots the whole round trip fits in interactive latencies.
//
//   $ ./build/examples/jit_service
#include <cstdio>

#include "src/base/stats.h"
#include "src/base/strings.h"
#include "src/core/host.h"
#include "src/guests/apps.h"
#include "src/sim/run.h"

namespace {

sim::Co<lv::Result<double>> ServeOneClient(sim::Engine* engine, lightvm::Host* host,
                                           int id) {
  lv::TimePoint arrival = engine->now();
  // Boot-on-packet.
  toolstack::VmConfig config;
  config.name = lv::StrFormat("jit%d", id);
  config.image = guests::MinipythonUnikernel();
  auto domid = co_await host->CreateVm(config);
  if (!domid.ok()) {
    co_return domid.error();
  }
  guests::Guest* guest = host->guest(*domid);
  co_await guest->WaitBooted();
  guests::PingResponder responder(guest, &host->netback(), &host->network_switch());

  // Deliver the held ping to the now-running VM and wait for the reply.
  bool answered = false;
  std::string port = lv::StrFormat("client%d", id);
  (void)host->network_switch().AddPort(port, [&answered](const xnet::Packet& p) {
    if (p.is_reply) {
      answered = true;
    }
  });
  xnet::Packet ping;
  ping.kind = xnet::PacketKind::kPing;
  ping.src = port;
  ping.dst = xdev::VifName(*domid, 0);
  co_await host->network_switch().Forward(host->Dom0Ctx(), ping);
  while (!answered) {
    co_await engine->Sleep(lv::Duration::Micros(100));
  }
  (void)host->network_switch().RemovePort(port);
  double rtt_ms = (engine->now() - arrival).ms();
  // Idle teardown.
  (void)co_await host->DestroyVm(*domid);
  co_return rtt_ms;
}

}  // namespace

int main() {
  sim::Engine engine;
  lightvm::Host host(&engine, lightvm::HostSpec::Xeon4Core(),
                     lightvm::Mechanisms::LightVm());
  host.AddShellFlavor(guests::MinipythonUnikernel().memory, true, 8);
  host.PrefillShellPool();

  std::printf("20 clients arrive 25 ms apart; each gets a freshly booted VM\n");
  lv::Samples rtts;
  for (int i = 0; i < 20; ++i) {
    auto rtt = sim::RunToCompletion(engine, ServeOneClient(&engine, &host, i));
    if (!rtt.ok()) {
      std::fprintf(stderr, "client %d failed: %s\n", i, rtt.error().message.c_str());
      return 1;
    }
    std::printf("  client %2d: first-ping RTT %.2f ms (includes VM boot)\n", i, *rtt);
    rtts.Add(*rtt);
    engine.RunFor(lv::Duration::Millis(25));
  }
  std::printf("median %.2f ms, p90 %.2f ms\n", rtts.Median(), rtts.Quantile(0.9));
  return 0;
}
